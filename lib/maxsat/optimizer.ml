(* Anytime MaxSAT by linear SAT-to-UNSAT descent, the same overall loop as
   the solver the paper uses (Open-WBO-Inc-MCS): find a model, bound the
   objective strictly below its cost, and repeat until UNSAT (optimal) or
   until the deadline expires (best-so-far is returned).

   Unit-weight objectives use an incremental totalizer; weighted
   objectives use a binary adder network with a lexicographic comparator.

   The descent is *incremental* by default: one solver lives across the
   whole SAT->UNSAT sequence, and each bound "objective <= k" is a
   selector literal a_k activated by assumption (every bound clause is
   emitted as a_k => C).  Two things fall out of that:

   - the descent is resumable: a deadline-expired [resume] leaves the
     solver exactly where it stopped, and a later [resume] picks the
     descent up at the current best bound instead of restarting;
   - the bound table is shareable: the selector for bound k, once built,
     works for any later descent over the same objective literals (the
     routing layer exploits this across slices sharing a skeleton).

   Certification opts out ([certify] forces [incremental] off): a DRUP
   trace replays permanent clause additions, and an UNSAT reached only
   under assumptions is not derivable from the recorded CNF alone — so
   certified descents keep the historical permanent-bound, from-scratch
   path bit for bit. *)

type outcome = {
  cost : int;
  model : bool array;
  iterations : int;
  solve_time : float;
  solver_stats : Sat.Solver.stats;
  certificate : Certify.report option;
}

type result =
  | Optimal of outcome
  | Feasible of outcome  (** deadline hit after at least one model *)
  | Unsatisfiable of Certify.report option
      (** the hard clauses alone are infeasible; the payload carries the
          certified refutation when [certify] was requested *)
  | Timeout  (** deadline hit before any model was found *)

let best_outcome = function
  | Optimal o | Feasible o -> Some o
  | Unsatisfiable _ | Timeout -> None

let m_iterations = Obs.Metrics.counter "maxsat.iterations"
let m_optima = Obs.Metrics.counter "maxsat.optima_proved"

(* Entries into the optimizer ([solve]/[start]/[attach]) — the
   denominator the serving layer's result cache drives down: a
   block-cache hit skips the engagement entirely. *)
let m_solves = Obs.Metrics.counter "maxsat.solves"

(* Descents continued across an expired deadline: a [resume] on a
   session that already ran at least once. *)
let m_resumed = Obs.Metrics.counter "descent.resumed"

(* Relaxation literals: for a soft clause C, a literal r such that r true
   "pays" the clause's weight.  Unit softs [l] reuse ~l directly — the
   common case in the QMR encoding (soft swap no-ops) adds no variables.
   All clauses go through the sink so that, under --certify, the
   certificate recorder sees the full CNF. *)
let relaxation_lits (sink : Sat.Sink.t) soft =
  List.map
    (fun (w, clause) ->
      match clause with
      | [ l ] -> (w, Sat.Lit.neg l)
      | _ ->
        let r = Sat.Lit.of_var (sink.fresh_var ()) in
        sink.add_clause (r :: clause);
        (w, r))
    soft

(* The descent body is written against this record so it can drive
   either a single {!Sat.Solver} or a {!Sat.Parallel} portfolio.  The
   [jobs = 1] instantiation forwards every field to the bare solver, so
   the sequential path is bit-identical to what it always was. *)
type engine = {
  e_new_var : unit -> Sat.Lit.var;
  e_set_polarity : Sat.Lit.var -> bool -> unit;
  e_solve : ?deadline:float -> Sat.Lit.t list -> Sat.Solver.result;
  e_model_value : Sat.Lit.var -> bool;
  e_n_vars : unit -> int;
  e_stats : unit -> Sat.Solver.stats;
}

let model_array eng = Array.init (eng.e_n_vars ()) eng.e_model_value

let cost_of_relax eng relax =
  List.fold_left
    (fun acc (w, r) ->
      let b = eng.e_model_value (Sat.Lit.var r) in
      let active = if Sat.Lit.sign r then b else not b in
      if active then acc + w else acc)
    0 relax

type bound_machinery =
  | Totalizer of Sat.Lit.t array
  | Adder of Adder.number

let build_machinery sink relax unweighted =
  if unweighted then Totalizer (Sat.Card.totalizer sink (List.map snd relax))
  else Adder (Adder.sum sink relax)

(* Add clauses forcing objective <= k.  Sound to add permanently: the
   sequence of bounds is strictly decreasing.  This is the certify-mode
   (from-scratch) path. *)
let assert_bound (sink : Sat.Sink.t) machinery k =
  match machinery with
  | Totalizer out ->
    if k < Array.length out then sink.add_clause [ Sat.Lit.neg out.(k) ]
    else ()
  | Adder bits -> Adder.assert_le sink bits k

(* The memoized selector table: assuming [selector k] forces
   objective <= k.  Shared across every descent over the same objective
   (same machinery, same solver) — the routing layer hands one [bounds]
   value to consecutive slices on a shared skeleton. *)
type bounds = {
  mutable b_machinery : bound_machinery option;
  mutable b_selectors : (int * Sat.Lit.t) list;
}

let shared_bounds () = { b_machinery = None; b_selectors = [] }

(* Every clause of the bound goes out guarded by ~a_k, so an inactive
   selector leaves the formula untouched (a later, looser descent on the
   same solver is not constrained by an earlier, tighter bound). *)
let guard_sink g (sink : Sat.Sink.t) =
  {
    sink with
    Sat.Sink.add_clause = (fun c -> sink.Sat.Sink.add_clause (Sat.Lit.neg g :: c));
  }

type session = {
  s_eng : engine;
  s_sink : Sat.Sink.t;
  s_relax : (int * Sat.Lit.t) list;
  s_unweighted : bool;
  s_assumptions : Sat.Lit.t list;
      (** caller context (e.g. the routing layer's activation guard)
          passed to every solver call of the descent *)
  s_bounds : bounds;
  s_incremental : bool;
  s_recorder : Proof.Certificate.recorder option;
  mutable s_cert : Certify.report option;
  mutable s_best : (int * bool array) option;
  mutable s_iterations : int;
  mutable s_attempts : int;  (** completed [resume] entries *)
  mutable s_solve_time : float;  (** accumulated across resumes *)
  mutable s_result : result option;  (** memoized terminal verdict *)
}

let selector_for s machinery k =
  match List.assoc_opt k s.s_bounds.b_selectors with
  | Some a -> a
  | None ->
    let a = Sat.Lit.of_var (s.s_eng.e_new_var ()) in
    (* Default the selector off so unrelated solver calls on the same
       solver are not accidentally biased into the bound. *)
    s.s_eng.e_set_polarity (Sat.Lit.var a) false;
    let gsink = guard_sink a s.s_sink in
    (match machinery with
    | Totalizer out ->
      if k < Array.length out then gsink.Sat.Sink.add_clause [ Sat.Lit.neg out.(k) ]
    | Adder bits -> Adder.assert_le gsink bits k);
    s.s_bounds.b_selectors <- (k, a) :: s.s_bounds.b_selectors;
    a

let resumed s = max 0 (s.s_attempts - 1)

let resume ?deadline ?report (s : session) =
  match s.s_result with
  | Some r -> r
  | None ->
    let t0 = Unix.gettimeofday () in
    if s.s_attempts > 0 then Obs.Metrics.incr m_resumed;
    s.s_attempts <- s.s_attempts + 1;
    let certify_unsat () =
      match s.s_recorder with
      | None -> ()
      | Some r ->
        let report = Certify.certify_refutation r in
        s.s_cert <-
          Some
            (Certify.merge (Option.value ~default:Certify.empty s.s_cert) report)
    in
    let report_iteration iteration cost =
      match report with
      | None -> ()
      | Some f -> f ~iteration ~cost ~stats:(s.s_eng.e_stats ())
    in
    (* One span per descent iteration: the bound being attempted going in,
       the solver's verdict (and model cost, when SAT) coming out. *)
    let iteration_span iteration bound =
      if Obs.Trace.enabled () then
        Obs.Trace.start "maxsat.iteration"
          ~args:
            [
              ("iteration", Obs.Trace.Int iteration);
              ("bound", Obs.Trace.Int bound);
            ]
      else Obs.Trace.null_span
    in
    let stop_iteration span ?cost outcome =
      Obs.Metrics.incr m_iterations;
      if span != Obs.Trace.null_span then
        Obs.Trace.stop span
          ~args:
            (("outcome", Obs.Trace.Str outcome)
            ::
            (match cost with
            | None -> []
            | Some c -> [ ("cost", Obs.Trace.Int c) ]))
    in
    let elapse () = s.s_solve_time <- s.s_solve_time +. (Unix.gettimeofday () -. t0) in
    let finish kind =
      let cost, model =
        match s.s_best with Some cm -> cm | None -> assert false
      in
      elapse ();
      let o =
        {
          cost;
          model;
          iterations = s.s_iterations;
          solve_time = s.s_solve_time;
          solver_stats = Sat.Solver.copy_stats (s.s_eng.e_stats ());
          certificate = s.s_cert;
        }
      in
      match kind with
      | `Optimal ->
        Obs.Metrics.incr m_optima;
        let r = Optimal o in
        s.s_result <- Some r;
        r
      | `Feasible -> Feasible o
    in
    let rec descend () =
      let best_cost = match s.s_best with Some (c, _) -> c | None -> 0 in
      if best_cost = 0 || s.s_relax = [] then finish `Optimal
      else begin
        let machinery =
          match s.s_bounds.b_machinery with
          | Some m -> m
          | None ->
            let m = build_machinery s.s_sink s.s_relax s.s_unweighted in
            s.s_bounds.b_machinery <- Some m;
            m
        in
        let bound = best_cost - 1 in
        let extra =
          if s.s_incremental then [ selector_for s machinery bound ]
          else begin
            assert_bound s.s_sink machinery bound;
            []
          end
        in
        let span = iteration_span (s.s_iterations + 1) bound in
        match s.s_eng.e_solve ?deadline (s.s_assumptions @ extra) with
        | Sat.Solver.Sat ->
          s.s_iterations <- s.s_iterations + 1;
          let cost = cost_of_relax s.s_eng s.s_relax in
          stop_iteration span ~cost "sat";
          (* The bound guarantees progress; guard against a stuck loop in
             case of an encoding bug. *)
          if cost >= best_cost then
            failwith "Optimizer: objective did not decrease";
          s.s_best <- Some (cost, model_array s.s_eng);
          report_iteration s.s_iterations cost;
          descend ()
        | Sat.Solver.Unsat ->
          stop_iteration span "unsat";
          (* The descent's one infeasibility claim: cost < best_cost has
             no model.  Certify it before reporting optimality. *)
          certify_unsat ();
          finish `Optimal
        | Sat.Solver.Unknown ->
          stop_iteration span "unknown";
          finish `Feasible
      end
    in
    (match s.s_best with
    | Some _ -> descend ()
    | None -> (
      let span0 = iteration_span (s.s_iterations + 1) (-1) in
      match s.s_eng.e_solve ?deadline s.s_assumptions with
      | Sat.Solver.Unsat ->
        stop_iteration span0 "unsat";
        (* The initial refutation is the optimizer's strongest claim —
           the hard clauses alone are infeasible — so under --certify it
           must be re-checked like every descent bound. *)
        certify_unsat ();
        elapse ();
        let r = Unsatisfiable s.s_cert in
        s.s_result <- Some r;
        r
      | Sat.Solver.Unknown ->
        stop_iteration span0 "unknown";
        elapse ();
        (* Not memoized: a later [resume] retries the initial solve. *)
        Timeout
      | Sat.Solver.Sat ->
        s.s_iterations <- s.s_iterations + 1;
        let cost = cost_of_relax s.s_eng s.s_relax in
        stop_iteration span0 ~cost "sat";
        s.s_best <- Some (cost, model_array s.s_eng);
        report_iteration s.s_iterations cost;
        descend ()))

let start ?(certify = false) ?(jobs = 1) ?(cube_vars = []) ?incremental
    instance =
  Obs.Metrics.incr m_solves;
  let t0 = Unix.gettimeofday () in
  (* Certification replays the DRUP trace of a single solver; a clause
     imported from a portfolio sibling is not RUP-derivable inside the
     importer's own trace, so certify forces the sequential engine (the
     documented fallback — soundness over speed).  It likewise forces
     permanent bounds: an UNSAT reached only under a selector assumption
     is not derivable from the recorded CNF alone. *)
  let jobs = if certify then 1 else max 1 jobs in
  let incremental =
    (match incremental with Some b -> b | None -> true) && not certify
  in
  let eng, sink, recorder =
    if jobs = 1 then begin
      let solver = Sat.Solver.create () in
      (* With certification on, every clause is recorded alongside the
         solver's proof trace so each UNSAT bound can be re-checked by
         the independent checker. *)
      let recorder =
        if certify then Some (Proof.Certificate.create solver) else None
      in
      let sink =
        match recorder with
        | Some r -> Proof.Certificate.sink r
        | None -> Sat.Sink.of_solver solver
      in
      let eng =
        {
          e_new_var = (fun () -> Sat.Solver.new_var solver);
          e_set_polarity = Sat.Solver.set_polarity solver;
          e_solve =
            (fun ?deadline assumptions ->
              Sat.Solver.solve ~assumptions ?deadline solver);
          e_model_value = Sat.Solver.model_value solver;
          e_n_vars = (fun () -> Sat.Solver.n_vars solver);
          e_stats = (fun () -> Sat.Solver.stats solver);
        }
      in
      (eng, sink, recorder)
    end
    else begin
      let p = Sat.Parallel.create ~jobs () in
      let sink =
        {
          Sat.Sink.fresh_var = (fun () -> Sat.Parallel.new_var p);
          add_clause = Sat.Parallel.add_clause p;
        }
      in
      let eng =
        {
          e_new_var = (fun () -> Sat.Parallel.new_var p);
          e_set_polarity = Sat.Parallel.set_polarity p;
          e_solve =
            (fun ?deadline assumptions ->
              match cube_vars with
              | [] -> Sat.Parallel.solve ~assumptions ?deadline p
              | candidates ->
                Sat.Cube.solve ~assumptions ?deadline p ~candidates);
          e_model_value = Sat.Parallel.model_value p;
          e_n_vars = (fun () -> Sat.Parallel.n_vars p);
          e_stats = (fun () -> Sat.Parallel.stats p);
        }
      in
      (eng, sink, None)
    end
  in
  for _ = 1 to Instance.n_vars instance do
    ignore (eng.e_new_var ())
  done;
  List.iter sink.Sat.Sink.add_clause (Instance.hard instance);
  let relax = relaxation_lits sink (Instance.soft instance) in
  (* Bias the search towards satisfying the soft clauses so that the first
     model is already cheap and the descent starts near the optimum. *)
  List.iter
    (fun (_, r) -> eng.e_set_polarity (Sat.Lit.var r) (not (Sat.Lit.sign r)))
    relax;
  {
    s_eng = eng;
    s_sink = sink;
    s_relax = relax;
    s_unweighted = Instance.is_unweighted instance;
    s_assumptions = [];
    s_bounds = shared_bounds ();
    s_incremental = incremental;
    s_recorder = recorder;
    s_cert = (if certify then Some Certify.empty else None);
    s_best = None;
    s_iterations = 0;
    s_attempts = 0;
    s_solve_time = Unix.gettimeofday () -. t0;
    s_result = None;
  }

(* Descend over an already-loaded solver (the routing layer's shared
   skeleton): the objective is [relax], solver calls carry [assumptions]
   (the caller's activation guard), and bounds — always
   assumption-activated here — memoize into [bounds] so consecutive
   sessions over the same solver reuse each other's selector clauses. *)
let attach ?(assumptions = []) ?bounds ~solver ~relax () =
  Obs.Metrics.incr m_solves;
  let eng =
    {
      e_new_var = (fun () -> Sat.Solver.new_var solver);
      e_set_polarity = Sat.Solver.set_polarity solver;
      e_solve =
        (fun ?deadline assumptions ->
          Sat.Solver.solve ~assumptions ?deadline solver);
      e_model_value = Sat.Solver.model_value solver;
      e_n_vars = (fun () -> Sat.Solver.n_vars solver);
      e_stats = (fun () -> Sat.Solver.stats solver);
    }
  in
  List.iter
    (fun (_, r) -> eng.e_set_polarity (Sat.Lit.var r) (not (Sat.Lit.sign r)))
    relax;
  {
    s_eng = eng;
    s_sink = Sat.Sink.of_solver solver;
    s_relax = relax;
    s_unweighted = List.for_all (fun (w, _) -> w = 1) relax;
    s_assumptions = assumptions;
    s_bounds = (match bounds with Some b -> b | None -> shared_bounds ());
    s_incremental = true;
    s_recorder = None;
    s_cert = None;
    s_best = None;
    s_iterations = 0;
    s_attempts = 0;
    s_solve_time = 0.;
    s_result = None;
  }

let solve ?deadline ?certify ?report ?jobs ?cube_vars ?incremental instance =
  resume ?deadline ?report (start ?certify ?jobs ?cube_vars ?incremental instance)

(* Convenience used by tests and the CLI. *)
let optimal_cost ?deadline ?certify ?jobs ?cube_vars ?incremental instance =
  match solve ?deadline ?certify ?jobs ?cube_vars ?incremental instance with
  | Optimal o -> Some o.cost
  | Feasible _ | Unsatisfiable _ | Timeout -> None
