(** Structural and semantic lint rules for CNF / WCNF instances.

    [check] inspects an instance without solving it.  Structural rules
    look at clauses in isolation (range, tautology, duplicates, weights);
    whole-instance rules need global views (pure and unconstrained
    variables, bounded subsumption); semantic rules run the independent
    {!Unit_prop} engine (level-0 refutation).

    Severities: [Error] findings mean the instance is broken and solving
    it is meaningless; [Warning] findings are encoding bugs in all but
    unusual pipelines; [Info] findings are redundancy that legitimate
    pipelines produce (e.g. pin units from sliced routing blocks subsume
    the assignment clauses they tighten). *)

(** {1 Rule identifiers} *)

val rule_out_of_range : string (** [Error]: literal beyond [n_vars]. *)

val rule_empty_hard : string (** [Error]: empty hard clause. *)

val rule_level0_conflict : string
(** [Error] (or [Info] when [expect_sat:false]): unit propagation alone
    refutes the hard part. *)

val rule_soft_weight : string (** [Error]: soft weight [<= 0]. *)

val rule_tautology : string (** [Warning]: clause contains [l] and [-l]. *)

val rule_duplicate_literal : string
(** [Warning]: repeated literal inside one clause. *)

val rule_duplicate_hard : string (** [Warning]: repeated hard clause. *)

val rule_duplicate_soft : string
(** [Warning]: two soft clauses with identical literals. *)

val rule_empty_soft : string
(** [Warning]: empty soft clause (its weight is a constant cost). *)

val rule_dead_soft : string
(** [Warning]: a hard clause subsumes a soft clause, so its weight can
    never be lost — dead objective weight. *)

val rule_pure_literal : string
(** [Warning]: a variable used in the hard part occurs with a single
    polarity across hard and soft clauses. *)

val rule_unconstrained : string
(** [Warning]: a variable below [n_vars] that occurs in no clause. *)

val rule_hard_subsumes_hard : string
(** [Info]: a hard clause strictly subsumes another hard clause. *)

val rule_subsumption_truncated : string
(** [Info]: the subsumption pass hit its pair budget and stopped. *)

val rule_findings_suppressed : string
(** [Info]: per-rule finding cap reached; remainder counted, not shown. *)

(** {1 Entry points} *)

val check :
  ?expect_sat:bool ->
  ?max_subsumption_pairs:int ->
  n_vars:int ->
  hard:Sat.Lit.t list list ->
  soft:(int * Sat.Lit.t list) list ->
  unit ->
  Report.t
(** [expect_sat] (default [true]) controls the severity of a level-0
    refutation: routing pipelines probe deliberately over-constrained
    blocks whose refutation is the expected answer, and pass [false].
    [max_subsumption_pairs] (default [200_000]) bounds the number of
    subset tests in the subsumption pass. *)

val check_instance :
  ?expect_sat:bool -> ?max_subsumption_pairs:int -> Maxsat.Instance.t -> Report.t

val check_cnf :
  ?expect_sat:bool ->
  ?max_subsumption_pairs:int ->
  n_vars:int ->
  Sat.Lit.t list list ->
  Report.t
(** Plain CNF: [check] with no soft clauses. *)
