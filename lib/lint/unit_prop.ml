(* Counter-based unit propagation, independent of the CDCL engine.

   Each clause tracks how many of its literals are currently true and
   false; a clause with zero true literals and all-but-one false is unit,
   all-false is a conflict.  Occurrence lists are keyed by the packed
   literal representation.  [probe] undoes the previous probe by walking
   the trail backwards, so repeated probes against the same clause set
   cost only the propagation they trigger. *)

type clause = {
  lits : Sat.Lit.t array;
  mutable n_true : int;
  mutable n_false : int;
}

type t = {
  n_vars : int;
  clauses : clause array;
  occ : int list array;  (* literal index -> clause ids containing it *)
  assigns : int array;  (* variable -> -1 undef / 0 false / 1 true *)
  trail : int array;  (* assigned variables, in assignment order *)
  mutable trail_n : int;
  units : Sat.Lit.t list;  (* unit clauses of the set *)
  has_empty : bool;
}

type outcome = Consistent | Conflict

let create ~n_vars clauses =
  let n_vars =
    List.fold_left
      (fun acc c ->
        List.fold_left (fun acc l -> max acc (Sat.Lit.var l + 1)) acc c)
      (max 0 n_vars) clauses
  in
  let normalized = List.filter_map Sat.Sink.normalize clauses in
  let has_empty = List.exists (fun c -> c = []) normalized in
  let units =
    List.filter_map (function [ l ] -> Some l | _ -> None) normalized
  in
  let long = List.filter (fun c -> List.length c >= 2) normalized in
  let clauses =
    Array.of_list
      (List.map
         (fun c -> { lits = Array.of_list c; n_true = 0; n_false = 0 })
         long)
  in
  let occ = Array.make (2 * max 1 n_vars) [] in
  Array.iteri
    (fun id c ->
      Array.iter
        (fun l ->
          let i = Sat.Lit.to_int l in
          occ.(i) <- id :: occ.(i))
        c.lits)
    clauses;
  {
    n_vars;
    clauses;
    occ;
    assigns = Array.make (max 1 n_vars) (-1);
    trail = Array.make (max 1 n_vars) 0;
    trail_n = 0;
    units;
    has_empty;
  }

let n_vars t = t.n_vars

let reset t =
  for i = t.trail_n - 1 downto 0 do
    let v = t.trail.(i) in
    let truth = t.assigns.(v) in
    let true_lit = Sat.Lit.of_var ~sign:(truth = 1) v in
    List.iter
      (fun id -> t.clauses.(id).n_true <- t.clauses.(id).n_true - 1)
      t.occ.(Sat.Lit.to_int true_lit);
    List.iter
      (fun id -> t.clauses.(id).n_false <- t.clauses.(id).n_false - 1)
      t.occ.(Sat.Lit.to_int (Sat.Lit.neg true_lit));
    t.assigns.(v) <- -1
  done;
  t.trail_n <- 0

let value t l =
  let v = t.assigns.(Sat.Lit.var l) in
  if v < 0 then -1 else if Sat.Lit.sign l then v else 1 - v

exception Found_conflict

(* Assign [l] true and update counters; newly-unit clauses push their
   forced literal onto [queue]. *)
let assign t queue l =
  match value t l with
  | 1 -> ()
  | 0 -> raise Found_conflict
  | _ ->
    let v = Sat.Lit.var l in
    t.assigns.(v) <- (if Sat.Lit.sign l then 1 else 0);
    t.trail.(t.trail_n) <- v;
    t.trail_n <- t.trail_n + 1;
    List.iter
      (fun id ->
        let c = t.clauses.(id) in
        c.n_true <- c.n_true + 1)
      t.occ.(Sat.Lit.to_int l);
    (* Finish every counter update before signalling a conflict: [reset]
       undoes the whole trail entry symmetrically, so bailing out halfway
       through this loop would leave counters skewed for later probes. *)
    let conflict = ref false in
    List.iter
      (fun id ->
        let c = t.clauses.(id) in
        c.n_false <- c.n_false + 1;
        let len = Array.length c.lits in
        if c.n_false = len then conflict := true
        else if (not !conflict) && c.n_true = 0 && c.n_false = len - 1 then begin
          (* Unit: find the one unassigned literal. *)
          let forced = ref None in
          Array.iter
            (fun q -> if value t q = -1 then forced := Some q)
            c.lits;
          match !forced with
          | Some q -> Queue.push q queue
          | None -> ()
          (* a literal of the clause was satisfied concurrently *)
        end)
      t.occ.(Sat.Lit.to_int (Sat.Lit.neg l));
    if !conflict then raise Found_conflict

let probe t assumptions =
  reset t;
  if t.has_empty then Conflict
  else
    try
      let queue = Queue.create () in
      List.iter (fun l -> Queue.push l queue) t.units;
      List.iter (fun l -> Queue.push l queue) assumptions;
      while not (Queue.is_empty queue) do
        assign t queue (Queue.pop queue)
      done;
      Consistent
    with Found_conflict -> Conflict

let implies t assumptions l =
  match probe t assumptions with
  | Conflict -> true
  | Consistent -> value t l = 1

let refutes t assumptions = probe t assumptions = Conflict
