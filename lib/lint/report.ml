(* Lint findings: an append-only list with severity rollups. *)

type severity = Info | Warning | Error

type finding = {
  rule : string;
  severity : severity;
  message : string;
}

(* Findings kept in reverse insertion order; materialised on read. *)
type t = { rev : finding list; n : int }

let empty = { rev = []; n = 0 }

let add t severity ~rule message =
  { rev = { rule; severity; message } :: t.rev; n = t.n + 1 }

let addf t severity ~rule fmt =
  Printf.ksprintf (fun msg -> add t severity ~rule msg) fmt

let concat ts =
  List.fold_left
    (fun acc t ->
      { rev = t.rev @ acc.rev; n = acc.n + t.n })
    empty ts

let findings t = List.rev t.rev

let count t = t.n

let rank = function Info -> 0 | Warning -> 1 | Error -> 2

let count_at_least sev t =
  List.fold_left
    (fun acc f -> if rank f.severity >= rank sev then acc + 1 else acc)
    0 t.rev

let by_rule t rule = List.filter (fun f -> f.rule = rule) (findings t)

let has_rule t rule = List.exists (fun f -> f.rule = rule) t.rev

let is_clean ?(at_least = Info) t = count_at_least at_least t = 0

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let pp fmt t =
  List.iter
    (fun f ->
      Format.fprintf fmt "%-7s %-24s %s@."
        (severity_to_string f.severity)
        f.rule f.message)
    (findings t)

let summary t =
  Printf.sprintf "%d errors, %d warnings, %d notes"
    (List.length (List.filter (fun f -> f.severity = Error) t.rev))
    (List.length (List.filter (fun f -> f.severity = Warning) t.rev))
    (List.length (List.filter (fun f -> f.severity = Info) t.rev))
