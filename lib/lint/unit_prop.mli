(** Standalone level-0 unit propagation over a fixed clause set.

    This is the lint engine's semantic probe: a counter-based propagator
    that shares no code with {!Sat.Solver}, so it can audit instances
    (and the solver) independently.  A [t] is built once per clause set;
    [probe] resets the assignment, asserts the given literals together
    with all unit clauses, and propagates to fixpoint.  Each probe costs
    time proportional to the propagation it triggers, so thousands of
    probes against one instance are cheap. *)

type t

type outcome = Consistent | Conflict

val create : n_vars:int -> Sat.Lit.t list list -> t
(** Tautological clauses are ignored (they can neither propagate nor
    conflict); literals beyond [n_vars] extend the variable range rather
    than raising, so the engine can be pointed at malformed instances the
    lint rules are about to flag. *)

val n_vars : t -> int

val probe : t -> Sat.Lit.t list -> outcome
(** Assert the literals (plus the clause set's units) and propagate.
    Contradictory assumptions are a [Conflict]. *)

val value : t -> Sat.Lit.t -> int
(** Value of a literal under the most recent [probe]: -1 undefined,
    0 false, 1 true. *)

val implies : t -> Sat.Lit.t list -> Sat.Lit.t -> bool
(** [implies t assumptions l]: after probing [assumptions], either the
    probe conflicts (vacuous truth) or [l] is propagated true. *)

val refutes : t -> Sat.Lit.t list -> bool
(** [refutes t assumptions]: the probe ends in a conflict. *)
