module Lit = Sat.Lit

let rule_out_of_range = "out-of-range-literal"
let rule_empty_hard = "empty-hard-clause"
let rule_level0_conflict = "level0-conflict"
let rule_soft_weight = "soft-weight"
let rule_tautology = "tautology"
let rule_duplicate_literal = "duplicate-literal"
let rule_duplicate_hard = "duplicate-hard-clause"
let rule_duplicate_soft = "duplicate-soft-clause"
let rule_empty_soft = "empty-soft-clause"
let rule_dead_soft = "dead-soft"
let rule_pure_literal = "pure-literal"
let rule_unconstrained = "unconstrained-variable"
let rule_hard_subsumes_hard = "hard-subsumes-hard"
let rule_subsumption_truncated = "subsumption-truncated"
let rule_findings_suppressed = "findings-suppressed"

(* Per-rule finding cap: a systematically broken instance should produce
   a readable report, not one line per clause. *)
let max_per_rule = 25

type ctx = {
  mutable report : Report.t;
  counts : (string, int) Hashtbl.t;
}

let emit ctx sev ~rule msg =
  let seen = try Hashtbl.find ctx.counts rule with Not_found -> 0 in
  Hashtbl.replace ctx.counts rule (seen + 1);
  if seen < max_per_rule then ctx.report <- Report.add ctx.report sev ~rule msg

let flush_suppressed ctx =
  let extra =
    Hashtbl.fold
      (fun rule n acc ->
        if n > max_per_rule then (rule, n - max_per_rule) :: acc else acc)
      ctx.counts []
  in
  List.iter
    (fun (rule, n) ->
      ctx.report <-
        Report.addf ctx.report Report.Info ~rule:rule_findings_suppressed
          "%d additional %s finding%s suppressed" n rule
          (if n = 1 then "" else "s"))
    (List.sort compare extra)

let pp_clause lits =
  "[" ^ String.concat " " (List.map (fun l -> string_of_int (Lit.to_dimacs l)) lits) ^ "]"

let clause_name kind i = Printf.sprintf "%s clause #%d" kind i

(* ------------------------------------------------------------------ *)
(* Per-clause structural rules                                        *)
(* ------------------------------------------------------------------ *)

let check_clause_shape ctx ~n_vars ~kind i lits =
  List.iter
    (fun l ->
      let v = Lit.var l in
      if v < 0 || v >= n_vars then
        emit ctx Report.Error ~rule:rule_out_of_range
          (Printf.sprintf "%s %s references variable %d (n_vars = %d)"
             (clause_name kind i) (pp_clause lits) v n_vars))
    lits;
  let sorted = List.sort_uniq Lit.compare lits in
  if List.length sorted < List.length lits then
    emit ctx Report.Warning ~rule:rule_duplicate_literal
      (Printf.sprintf "%s %s repeats a literal" (clause_name kind i)
         (pp_clause lits));
  match Sat.Sink.normalize lits with
  | None ->
    emit ctx Report.Warning ~rule:rule_tautology
      (Printf.sprintf "%s %s is a tautology" (clause_name kind i)
         (pp_clause lits))
  | Some _ -> ()

(* ------------------------------------------------------------------ *)
(* Duplicate whole clauses                                            *)
(* ------------------------------------------------------------------ *)

(* Key clauses by their canonical form; tautologies (normalize = None)
   are excluded — they are already flagged and trivially "equal". *)
let check_duplicates ctx ~kind ~rule clauses =
  let seen = Hashtbl.create 64 in
  List.iteri
    (fun i lits ->
      match Sat.Sink.normalize lits with
      | None -> ()
      | Some canon -> (
        let key = List.map Lit.to_int canon in
        match Hashtbl.find_opt seen key with
        | Some first ->
          emit ctx Report.Warning ~rule
            (Printf.sprintf "%s %s duplicates %s" (clause_name kind i)
               (pp_clause lits) (clause_name kind first))
        | None -> Hashtbl.add seen key i))
    clauses

(* ------------------------------------------------------------------ *)
(* Variable-occurrence rules: pure literals and unconstrained vars     *)
(* ------------------------------------------------------------------ *)

let check_variables ctx ~n_vars ~hard ~soft =
  if n_vars > 0 then begin
    let pos = Array.make n_vars 0 and neg = Array.make n_vars 0 in
    let in_hard = Array.make n_vars false in
    let count ~is_hard lits =
      List.iter
        (fun l ->
          let v = Lit.var l in
          if v >= 0 && v < n_vars then begin
            if Lit.sign l then pos.(v) <- pos.(v) + 1
            else neg.(v) <- neg.(v) + 1;
            if is_hard then in_hard.(v) <- true
          end)
        lits
    in
    List.iter (count ~is_hard:true) hard;
    List.iter (fun (_, lits) -> count ~is_hard:false lits) soft;
    let unconstrained = ref [] and n_unconstrained = ref 0 in
    let pure = ref [] and n_pure = ref 0 in
    for v = n_vars - 1 downto 0 do
      if pos.(v) = 0 && neg.(v) = 0 then begin
        incr n_unconstrained;
        if List.length !unconstrained < 8 then unconstrained := v :: !unconstrained
      end
      else if in_hard.(v) && (pos.(v) = 0 || neg.(v) = 0) then begin
        incr n_pure;
        if List.length !pure < 8 then
          pure := (v, if pos.(v) > 0 then "positive" else "negative") :: !pure
      end
    done;
    if !n_unconstrained > 0 then
      emit ctx Report.Warning ~rule:rule_unconstrained
        (Printf.sprintf "%d variable%s occur in no clause (e.g. %s)"
           !n_unconstrained
           (if !n_unconstrained = 1 then "" else "s")
           (String.concat ", " (List.map string_of_int !unconstrained)));
    if !n_pure > 0 then
      emit ctx Report.Warning ~rule:rule_pure_literal
        (Printf.sprintf
           "%d hard-part variable%s occur with one polarity only (e.g. %s)"
           !n_pure
           (if !n_pure = 1 then "" else "s")
           (String.concat ", "
              (List.map
                 (fun (v, pol) -> Printf.sprintf "%d (%s)" v pol)
                 !pure)))
  end

(* ------------------------------------------------------------------ *)
(* Bounded subsumption                                                *)
(* ------------------------------------------------------------------ *)

(* [a] and [b] are sorted int arrays; subset by merge walk. *)
let subset a b =
  let la = Array.length a and lb = Array.length b in
  let rec go i j =
    if i = la then true
    else if j = lb then false
    else
      let c = compare a.(i) b.(j) in
      if c = 0 then go (i + 1) (j + 1)
      else if c > 0 then go i (j + 1)
      else false
  in
  la <= lb && go 0 0

type target = { is_soft : bool; idx : int; arr : int array }

let check_subsumption ctx ~max_pairs ~hard ~soft =
  let canon lits =
    match Sat.Sink.normalize lits with
    | None -> None
    | Some c when c = [] -> None
    | Some c -> Some (Array.of_list (List.map Lit.to_int c))
  in
  let hard_arrs =
    List.mapi (fun i lits -> (i, canon lits)) hard
    |> List.filter_map (fun (i, c) -> Option.map (fun arr -> (i, arr)) c)
  in
  let soft_arrs =
    List.mapi (fun i (_, lits) -> (i, canon lits)) soft
    |> List.filter_map (fun (i, c) -> Option.map (fun arr -> (i, arr)) c)
  in
  let targets =
    Array.of_list
      (List.map (fun (idx, arr) -> { is_soft = false; idx; arr }) hard_arrs
      @ List.map (fun (idx, arr) -> { is_soft = true; idx; arr }) soft_arrs)
  in
  let occ : (int, int list) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun id tgt ->
      Array.iter
        (fun lit ->
          let prev = try Hashtbl.find occ lit with Not_found -> [] in
          Hashtbl.replace occ lit (id :: prev))
        tgt.arr)
    targets;
  let occ_count lit =
    match Hashtbl.find_opt occ lit with Some l -> List.length l | None -> 0
  in
  let budget = ref max_pairs in
  (try
     List.iter
       (fun (ci, carr) ->
         let rarest = ref carr.(0) in
         Array.iter
           (fun lit -> if occ_count lit < occ_count !rarest then rarest := lit)
           carr;
         List.iter
           (fun id ->
             let tgt = targets.(id) in
             if tgt.is_soft || tgt.idx <> ci then begin
               decr budget;
               if !budget < 0 then raise Exit;
               if subset carr tgt.arr then
                 if tgt.is_soft then
                   emit ctx Report.Warning ~rule:rule_dead_soft
                     (Printf.sprintf
                        "%s is subsumed by %s: its weight can never be lost"
                        (clause_name "soft" tgt.idx)
                        (clause_name "hard" ci))
                 else if Array.length carr < Array.length tgt.arr then
                   emit ctx Report.Info ~rule:rule_hard_subsumes_hard
                     (Printf.sprintf "%s subsumes %s" (clause_name "hard" ci)
                        (clause_name "hard" tgt.idx))
             end)
           (try Hashtbl.find occ !rarest with Not_found -> []))
       hard_arrs
   with Exit ->
     emit ctx Report.Info ~rule:rule_subsumption_truncated
       (Printf.sprintf
          "subsumption pass stopped after %d pair tests; remaining pairs unchecked"
          max_pairs))

(* ------------------------------------------------------------------ *)
(* Entry points                                                       *)
(* ------------------------------------------------------------------ *)

let check ?(expect_sat = true) ?(max_subsumption_pairs = 200_000) ~n_vars
    ~hard ~soft () =
  let ctx = { report = Report.empty; counts = Hashtbl.create 16 } in
  List.iteri
    (fun i lits ->
      if lits = [] then
        emit ctx Report.Error ~rule:rule_empty_hard
          (Printf.sprintf "%s is empty" (clause_name "hard" i))
      else check_clause_shape ctx ~n_vars ~kind:"hard" i lits)
    hard;
  List.iteri
    (fun i (w, lits) ->
      if w <= 0 then
        emit ctx Report.Error ~rule:rule_soft_weight
          (Printf.sprintf "%s %s has non-positive weight %d"
             (clause_name "soft" i) (pp_clause lits) w);
      if lits = [] then
        emit ctx Report.Warning ~rule:rule_empty_soft
          (Printf.sprintf "%s carries weight %d but can never be satisfied"
             (clause_name "soft" i) w)
      else check_clause_shape ctx ~n_vars ~kind:"soft" i lits)
    soft;
  check_duplicates ctx ~kind:"hard" ~rule:rule_duplicate_hard hard;
  check_duplicates ctx ~kind:"soft" ~rule:rule_duplicate_soft
    (List.map snd soft);
  check_variables ctx ~n_vars ~hard ~soft;
  check_subsumption ctx ~max_pairs:max_subsumption_pairs ~hard ~soft;
  (let up = Unit_prop.create ~n_vars hard in
   match Unit_prop.probe up [] with
   | Unit_prop.Conflict ->
     if expect_sat then
       emit ctx Report.Error ~rule:rule_level0_conflict
         "unit propagation alone refutes the hard clauses"
     else
       emit ctx Report.Info ~rule:rule_level0_conflict
         "unit propagation refutes the hard clauses (expected for this instance)"
   | Unit_prop.Consistent -> ());
  flush_suppressed ctx;
  ctx.report

let check_instance ?expect_sat ?max_subsumption_pairs inst =
  check ?expect_sat ?max_subsumption_pairs
    ~n_vars:(Maxsat.Instance.n_vars inst)
    ~hard:(Maxsat.Instance.hard inst)
    ~soft:(Maxsat.Instance.soft inst)
    ()

let check_cnf ?expect_sat ?max_subsumption_pairs ~n_vars hard =
  check ?expect_sat ?max_subsumption_pairs ~n_vars ~hard ~soft:[] ()
