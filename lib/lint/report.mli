(** Lint findings and reports.

    A report is an ordered list of findings, each tagged with the rule
    that produced it and a severity: [Error] means the instance is broken
    (out-of-range literals, a level-0 refutation, invalid soft weights),
    [Warning] means the encoding is suspicious (dead soft weight, pure or
    unconstrained variables, duplicates), [Info] is redundancy worth
    knowing about but expected in some pipelines (e.g. unit clauses from
    pinned seams subsume the clauses they tighten). *)

type severity = Info | Warning | Error

type finding = {
  rule : string;  (** stable kebab-case rule identifier *)
  severity : severity;
  message : string;
}

type t

val empty : t
val add : t -> severity -> rule:string -> string -> t

val addf :
  t -> severity -> rule:string -> ('a, unit, string, t) format4 -> 'a

val concat : t list -> t
val findings : t -> finding list
val count : t -> int
val count_at_least : severity -> t -> int
val by_rule : t -> string -> finding list
val has_rule : t -> string -> bool

val is_clean : ?at_least:severity -> t -> bool
(** No findings at or above the given severity (default [Info], i.e. no
    findings at all). *)

val severity_to_string : severity -> string
val pp : Format.formatter -> t -> unit

val summary : t -> string
(** One-line "E errors, W warnings, I notes" rollup. *)
