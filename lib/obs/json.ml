type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printer *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_to buf x =
  if Float.is_nan x || Float.is_integer x && Float.abs x < 1e15 then
    Buffer.add_string buf
      (Printf.sprintf "%.0f" (if Float.is_nan x then 0.0 else x))
  else if Float.is_integer x || Float.abs x = Float.infinity then
    (* Huge integral values and infinities: not exactly representable;
       clamp to a printable finite form. *)
    Buffer.add_string buf
      (Printf.sprintf "%.12g" (if Float.abs x = Float.infinity then 0.0 else x))
  else Buffer.add_string buf (Printf.sprintf "%.12g" x)

let rec to_buffer buf v =
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x -> number_to buf x
  | Str s -> escape_to buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, x) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf x)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parser *)

exception Parse_fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, found %c" c c')
    | None -> fail (Printf.sprintf "expected %c, found end of input" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  (* Encode a Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
  let add_utf8 buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v =
      try int_of_string ("0x" ^ String.sub s !pos 4)
      with Failure _ -> fail "invalid \\u escape"
    in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' -> add_utf8 buf (hex4 ())
        | _ -> fail "invalid escape");
        go ()
      end
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c ->
        Buffer.add_char buf c;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let fields = ref [] in
        let rec fields_loop () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          fields := (k, v) :: !fields;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields_loop ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or } in object"
        in
        fields_loop ();
        Obj (List.rev !fields)
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [] in
        let rec items_loop () =
          let v = parse_value () in
          items := v :: !items;
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items_loop ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ] in array"
        in
        items_loop ();
        List (List.rev !items)
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Parse_fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ------------------------------------------------------------------ *)
(* Accessors *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_list = function
  | List xs -> xs
  | Null | Bool _ | Num _ | Str _ | Obj _ -> []

let string_value = function Str s -> Some s | _ -> None
let number_value = function Num x -> Some x | _ -> None
