(** Process-wide counters and gauges with a flat [metrics.json] export.

    Counters are atomic and always on (no enable flag): instrumented
    code updates them at span-boundary granularity — once per solver
    call, per block, per routing run — never inside hot loops, so an
    increment is in the nanoseconds and needs no guard.  Registration
    ({!counter}/{!gauge}) interns by name in a global registry: calling
    it twice with one name yields the same cell, so call sites hoist the
    lookup to module level and pay only the atomic op at runtime. *)

type counter
type gauge

val counter : string -> counter
(** Find or create the counter registered under [name]. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
(** Find or create the gauge registered under [name]. *)

val set : gauge -> float -> unit
val get : gauge -> float

val reset : unit -> unit
(** Zero every registered counter and gauge (cells stay registered, so
    module-level handles remain valid). *)

val snapshot : unit -> (string * float) list
(** All registered metrics, sorted by name (counters as floats). *)

val to_json : unit -> Json.t
(** Flat object: metric name to numeric value. *)

val to_json_string : unit -> string
val write_json : string -> unit
