(** Monotonic timestamps for span timing.

    The OCaml runtime exposes only the wall clock ([Unix.gettimeofday]),
    which NTP can step backwards; a backwards step during a span would
    yield a negative duration and a trace viewers refuse to load.  This
    module rectifies the wall clock into a process-wide non-decreasing
    timestamp stream (a CAS-max over all domains), which is what every
    span and counter sample reads. *)

val now_us : unit -> float
(** Microseconds since {!origin_us}; never decreases, across domains. *)

val origin_us : unit -> float
(** The wall-clock instant (in epoch microseconds) that [now_us] counts
    from — the moment this module was initialised. *)
