(** A minimal JSON value type with a printer and a strict parser.

    Exists so the exporters ({!Trace.to_chrome_json},
    {!Metrics.to_json}) can build well-formed documents and so tests and
    smoke checks can re-parse what was emitted (round-trip validation)
    without pulling a JSON dependency into the tree. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (no insignificant whitespace), with full string escaping.
    Numbers print as integers when integral, [%.12g] otherwise; NaN and
    infinities (not representable in JSON) print as [0]. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser for the printed subset of JSON:
    objects, arrays, strings (with [\uXXXX] escapes decoded to UTF-8),
    numbers, [true]/[false]/[null].  Rejects trailing garbage.  Errors
    carry a byte offset. *)

val member : string -> t -> t option
(** Field lookup; [None] on missing keys and non-objects. *)

val to_list : t -> t list
(** The elements of a [List]; [[]] on any other constructor. *)

val string_value : t -> string option
val number_value : t -> float option
