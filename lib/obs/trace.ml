type arg = Str of string | Int of int | Float of float | Bool of bool

type span = {
  sname : string;
  stid : int;
  st0 : float;
  sargs : (string * arg) list;
}

type event = {
  name : string;
  ph : [ `Complete | `Instant | `Counter ];
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * arg) list;
}

let null_span = { sname = ""; stid = -1; st0 = 0.0; sargs = [] }

let dummy_event =
  { name = ""; ph = `Instant; ts_us = 0.0; dur_us = 0.0; tid = 0; args = [] }

(* The hot-path guard: one mutable boolean, read without the lock.  The
   worst a torn read can cost is one dropped or one spurious event at an
   enable/disable edge — never corruption, because the ring itself is
   only touched under [lock]. *)
let enabled_flag = ref false
let enabled () = !enabled_flag

let lock = Mutex.create ()
let ring = ref (Array.make 0 dummy_event)
let head = ref 0 (* next write position *)
let count = ref 0 (* live events in the ring *)
let total = ref 0 (* recorded since last clear, incl. overwritten *)
let default_capacity = 65536

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) dummy_event;
      head := 0;
      count := 0;
      total := 0)

let enable ?(capacity = default_capacity) () =
  let capacity = max 1 capacity in
  locked (fun () ->
      if Array.length !ring <> capacity then begin
        ring := Array.make capacity dummy_event;
        head := 0;
        count := 0;
        total := 0
      end;
      enabled_flag := true)

let disable () = enabled_flag := false

let push ev =
  locked (fun () ->
      let cap = Array.length !ring in
      if cap > 0 then begin
        !ring.(!head) <- ev;
        head := (!head + 1) mod cap;
        if !count < cap then incr count;
        incr total
      end)

let recorded () = locked (fun () -> !total)
let dropped () = locked (fun () -> !total - !count)

let events () =
  locked (fun () ->
      let cap = Array.length !ring in
      List.init !count (fun i ->
          !ring.((!head - !count + i + (2 * cap)) mod (max 1 cap))))

let tid () = (Domain.self () :> int)

let start ?(args = []) name =
  if not !enabled_flag then null_span
  else { sname = name; stid = tid (); st0 = Clock.now_us (); sargs = args }

let stop ?(args = []) span =
  if !enabled_flag && span != null_span then
    push
      {
        name = span.sname;
        ph = `Complete;
        ts_us = span.st0;
        dur_us = Clock.now_us () -. span.st0;
        tid = span.stid;
        args = span.sargs @ args;
      }

let with_span ?args name f =
  if not !enabled_flag then f ()
  else begin
    let span = start ?args name in
    match f () with
    | v ->
      stop span;
      v
    | exception exn ->
      stop span ~args:[ ("exception", Str (Printexc.to_string exn)) ];
      raise exn
  end

let instant ?(args = []) name =
  if !enabled_flag then
    push
      {
        name;
        ph = `Instant;
        ts_us = Clock.now_us ();
        dur_us = 0.0;
        tid = tid ();
        args;
      }

let sample name series =
  if !enabled_flag then
    push
      {
        name;
        ph = `Counter;
        ts_us = Clock.now_us ();
        dur_us = 0.0;
        tid = tid ();
        args = List.map (fun (k, v) -> (k, Float v)) series;
      }

(* ------------------------------------------------------------------ *)
(* Chrome trace_events export *)

let json_of_arg = function
  | Str s -> Json.Str s
  | Int i -> Json.Num (float_of_int i)
  | Float x -> Json.Num x
  | Bool b -> Json.Bool b

let json_of_event ev =
  let ph, extra =
    match ev.ph with
    | `Complete -> ("X", [ ("dur", Json.Num ev.dur_us) ])
    | `Instant -> ("i", [ ("s", Json.Str "t") ])
    | `Counter -> ("C", [])
  in
  Json.Obj
    ([
       ("name", Json.Str ev.name);
       ("cat", Json.Str "satmap");
       ("ph", Json.Str ph);
       ("ts", Json.Num ev.ts_us);
       ("pid", Json.Num 1.0);
       ("tid", Json.Num (float_of_int ev.tid));
     ]
    @ extra
    @
    match ev.args with
    | [] -> []
    | args ->
      [ ("args", Json.Obj (List.map (fun (k, v) -> (k, json_of_arg v)) args)) ])

let to_chrome_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events ())));
      ("displayTimeUnit", Json.Str "ms");
    ]

let to_chrome_string () = Json.to_string (to_chrome_json ())

let write_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_string ()))
