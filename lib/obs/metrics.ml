type counter = { c_name : string; cell : int Atomic.t }
type gauge = { g_name : string; gcell : float Atomic.t }

(* Interning registry.  Lookups happen at module-initialisation time in
   instrumented code; the lock only guards registration races between
   domains spawned before their first metric touch. *)
let lock = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 32

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt counters name with
      | Some c -> c
      | None ->
        let c = { c_name = name; cell = Atomic.make 0 } in
        Hashtbl.add counters name c;
        c)

let incr c = ignore (Atomic.fetch_and_add c.cell 1)
let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.cell n)
let value c = Atomic.get c.cell

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt gauges name with
      | Some g -> g
      | None ->
        let g = { g_name = name; gcell = Atomic.make 0.0 } in
        Hashtbl.add gauges name g;
        g)

let set g x = Atomic.set g.gcell x
let get g = Atomic.get g.gcell

let reset () =
  locked (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c.cell 0) counters;
      Hashtbl.iter (fun _ g -> Atomic.set g.gcell 0.0) gauges)

let snapshot () =
  locked (fun () ->
      let acc = ref [] in
      Hashtbl.iter
        (fun _ c -> acc := (c.c_name, float_of_int (Atomic.get c.cell)) :: !acc)
        counters;
      Hashtbl.iter
        (fun _ g -> acc := (g.g_name, Atomic.get g.gcell) :: !acc)
        gauges;
      List.sort (fun (a, _) (b, _) -> String.compare a b) !acc)

let to_json () =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) (snapshot ()))

let to_json_string () = Json.to_string (to_json ())

let write_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json_string ()))
