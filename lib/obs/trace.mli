(** Spans and the ring-buffered trace collector.

    A span is a named, timed interval with typed arguments, stamped with
    the domain that ran it, so the parallel portfolio renders as
    parallel tracks in a trace viewer.  Completed spans, instant events
    and counter samples land in one process-wide ring buffer; when it
    fills, the oldest events are overwritten (and counted in
    {!dropped}) — tracing a long run degrades to "the recent past"
    instead of unbounded memory.

    Overhead discipline: collection is {e off} by default.  Every
    recording entry point first reads one boolean flag; when the flag is
    false nothing is allocated and nothing else is touched ({!start}
    returns the preallocated {!null_span}).  Instrumented code may
    therefore stay in place permanently — guarded hot-path call sites
    cost a branch.  Argument lists are built by the caller, so wrap any
    argument construction in an {!enabled} test. *)

type arg = Str of string | Int of int | Float of float | Bool of bool

type span
(** A started, not-yet-stopped interval.  Stopping a span records it;
    a span started while collection was disabled records nothing. *)

val null_span : span
(** The inert span: {!stop} on it is a no-op.  [start] returns it (no
    allocation) whenever collection is disabled. *)

val enabled : unit -> bool
val enable : ?capacity:int -> unit -> unit
(** Switch collection on.  [capacity] (default [65536]) bounds the ring
    buffer; re-enabling with a different capacity clears it. *)

val disable : unit -> unit
val clear : unit -> unit
(** Drop all collected events and reset {!dropped}/{!recorded}. *)

val start : ?args:(string * arg) list -> string -> span
val stop : ?args:(string * arg) list -> span -> unit
(** [stop] appends [args] to the span's start-time arguments — results
    (cost, outcome, escalation counts) become visible in the viewer. *)

val with_span : ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is closed (and recorded) even
    when the thunk raises. *)

val instant : ?args:(string * arg) list -> string -> unit
(** A zero-duration marker (Chrome phase ["i"]), e.g. a seam backtrack. *)

val sample : string -> (string * float) list -> unit
(** A counter sample (Chrome phase ["C"]): the viewer plots each key as
    a stacked time series, e.g. propagations/s sampled at restarts. *)

type event = {
  name : string;
  ph : [ `Complete | `Instant | `Counter ];
  ts_us : float;  (** start, microseconds since {!Clock.origin_us} *)
  dur_us : float;  (** 0 for instant and counter events *)
  tid : int;  (** domain id *)
  args : (string * arg) list;
}

val events : unit -> event list
(** Snapshot of the ring in chronological (recording) order. *)

val recorded : unit -> int
(** Events recorded since the last {!clear} (including overwritten). *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last {!clear}. *)

val to_chrome_json : unit -> Json.t
(** The collected events as a Chrome [trace_events] document
    ([{"traceEvents": [...], "displayTimeUnit": "ms"}]) — loadable in
    [chrome://tracing] and Perfetto. *)

val to_chrome_string : unit -> string
val write_chrome : string -> unit
(** Write {!to_chrome_string} to a file. *)
