let origin = Unix.gettimeofday () *. 1e6

let origin_us () = origin

(* Highest timestamp handed out so far, shared by all domains.  Each
   reading is max(wall, previous): a backwards wall-clock step repeats
   the previous timestamp instead of travelling back in time. *)
let last = Atomic.make 0.0

let now_us () =
  let t = (Unix.gettimeofday () *. 1e6) -. origin in
  let rec settle () =
    let prev = Atomic.get last in
    if t > prev then
      if Atomic.compare_and_set last prev t then t else settle ()
    else prev
  in
  settle ()
