(* A Glucose-syrup-style portfolio: N diversified CDCL members attack
   the same instance, exchanging low-LBD learnt clauses through one
   lock-free ring ({!Shared}), and the first member to reach a decisive
   verdict cancels the rest.

   All members hold exactly the same problem clauses, so every clause
   any member learns — even under assumptions, which appear negated
   inside the learnt clause — is a consequence of the common formula,
   and importing it into a sibling preserves equivalence.  Members never
   carry proof sinks: an imported clause is not RUP-derivable inside the
   importer's own trace, which is why certify mode stays sequential.

   With [jobs = 1] no ring, no hooks and no cancellation flag are
   installed and every call forwards straight to the single member, so
   the portfolio at one job is bit-identical to a bare {!Solver}. *)

let m_shared = Obs.Metrics.counter "sat.shared_clauses"

module RA = Race.Sync.Atomic
module RD = Race.Sync.Domain
module RC = Race.Cell

(* Last decisive member index — a gauge, so the bench can report which
   diversification profile won the most recent portfolio race. *)
let g_winner = Obs.Metrics.gauge "sat.portfolio_winner"

type t = {
  members : Solver.t array;
  ring : Shared.t option;
  cursors : int array;  (* per-member ring drain position *)
  cancel : bool RA.t;
  wins : int array;
  mutable winner : int;
  mutable pending : Lit.t list list;
      (* problem clauses not yet replicated to members 1.., newest
         first.  Loading a mapping-scale CNF into every member
         sequentially costs [jobs] x the single-solver load, which
         dwarfs the solve itself on easy blocks — so [add_clause] feeds
         only the reference member eagerly and the rest catch up in
         parallel (one domain each) at the next solve. *)
}

(* Diversification tables: member 0 keeps stock settings (it is the
   reference member and the [jobs = 1] fast path); members 1.. sweep the
   restart and clause-database schedules. *)
let restart_bases = [| 100.0; 50.0; 150.0; 70.0; 200.0; 40.0; 120.0; 90.0 |]
let reduce_schedules = [| (2000, 300); (1200, 200); (3000, 400); (800, 150) |]

(* Cheap integer mix for per-member polarity seeds. *)
let mix i v =
  let h = (v * 0x9E3779B1) lxor (i * 0x85EBCA77) in
  (h lsr 13) land 1 = 0

let create ?(jobs = 1) ?(glue_limit = 4) ?ring_size () =
  if jobs < 1 then invalid_arg "Parallel.create: jobs must be >= 1";
  let members = Array.init jobs (fun _ -> Solver.create ()) in
  Array.iteri
    (fun i m ->
      if i > 0 then begin
        Solver.set_restart_base m
          restart_bases.(i mod Array.length restart_bases);
        let first, inc = reduce_schedules.(i mod Array.length reduce_schedules) in
        Solver.set_reduce_db_params m ~first ~inc
      end)
    members;
  let t =
    {
      members;
      ring = (if jobs > 1 then Some (Shared.create ?size:ring_size ()) else None);
      cursors = Array.make jobs 0;
      cancel = RA.make false;
      wins = Array.make jobs 0;
      winner = 0;
      pending = [];
    }
  in
  (match t.ring with
  | None -> ()
  | Some ring ->
    Array.iteri
      (fun i m ->
        Solver.set_on_learnt m
          (Some
             (fun lits lbd ->
               if lbd <= glue_limit then begin
                 Shared.publish ring ~src:i ~lbd (Array.copy lits);
                 Obs.Metrics.incr m_shared
               end));
        Solver.set_import m
          (Some
             (fun () ->
               let clauses, cursor =
                 Shared.drain ring ~src:i ~cursor:t.cursors.(i)
               in
               t.cursors.(i) <- cursor;
               clauses));
        Solver.set_cancel m (Some t.cancel))
      t.members);
  t

let jobs t = Array.length t.members
let n_vars t = Solver.n_vars t.members.(0)
let ok t = Solver.ok t.members.(0)

let new_var t =
  let v = Solver.new_var t.members.(0) in
  for i = 1 to Array.length t.members - 1 do
    let v' = Solver.new_var t.members.(i) in
    assert (v' = v);
    (* Polarity diversification, the cheapest portfolio lever: a third of
       the members start all-true, a third from a hashed seed, the rest
       keep the stock all-false phase.  Explicit [set_polarity] calls
       from the client override this per variable, on every member. *)
    match i land 3 with
    | 1 -> Solver.set_polarity t.members.(i) v true
    | 2 -> Solver.set_polarity t.members.(i) v (mix i v)
    | 3 -> Solver.set_polarity t.members.(i) v (mix (i + 17) v)
    | _ -> ()
  done;
  v

let add_clause t lits =
  Solver.add_clause t.members.(0) lits;
  if Array.length t.members > 1 then t.pending <- lits :: t.pending

(* Replicate buffered problem clauses to members 1.. — one domain per
   member, so the wall cost of loading N copies is one load, not N.
   Member 0 is already current; every variable in a pending clause is
   known to all members ([new_var] allocates everywhere eagerly). *)
let flush_pending t =
  match t.pending with
  | [] -> ()
  | pending ->
    t.pending <- [];
    let clauses = List.rev pending in
    let domains =
      Array.init
        (Array.length t.members - 1)
        (fun k ->
          RD.spawn (fun () ->
              List.iter (Solver.add_clause t.members.(k + 1)) clauses))
    in
    Array.iter RD.join domains

let set_polarity t v b =
  Array.iter (fun m -> Solver.set_polarity m v b) t.members

let probe t l = Solver.probe_literal t.members.(0) l

let model_value t v = Solver.model_value t.members.(t.winner) v
let value_lit t l = Solver.value_lit t.members.(0) l
let stats t = Solver.stats t.members.(t.winner)
let winner t = t.winner
let wins t = Array.copy t.wins

let shared_clauses t =
  match t.ring with Some r -> Shared.published r | None -> 0

let imported_clauses t =
  Array.fold_left (fun acc m -> acc + (Solver.stats m).Solver.imported_clauses)
    0 t.members

let member_span i f =
  Obs.Trace.with_span "sat.parallel_member"
    ~args:[ ("member", Obs.Trace.Int i) ]
    f

(* Run [work i] on every member — member 0 on the calling domain, the
   rest on fresh domains — then join and re-raise the first member
   exception (after all domains are collected, so none leak).
   [on_spawned] runs on the caller right after the worker domains exist
   and before any join — it only ever does something when a race mutant
   wants to peek at member state from the caller. *)
let fan_out ?(on_spawned = fun () -> ()) t work =
  let n = Array.length t.members in
  let errors = Array.init n (fun _ -> RC.make ~name:"parallel.errors" None) in
  let guarded i () =
    try work i with e -> (
      RC.set errors.(i) (Some e);
      RA.set t.cancel true)
  in
  let domains = Array.init (n - 1) (fun k -> RD.spawn (guarded (k + 1))) in
  on_spawned ();
  guarded 0 ();
  Array.iter RD.join domains;
  RA.set t.cancel false;
  Array.iter
    (fun c -> match RC.get c with Some e -> raise e | None -> ())
    errors

let solve_with_core ?(assumptions = []) ?deadline t =
  let n = Array.length t.members in
  if n = 1 then begin
    t.winner <- 0;
    let ((r, _) as res) =
      Solver.solve_with_core ~assumptions ?deadline t.members.(0)
    in
    (match r with
    | Solver.Sat | Solver.Unsat -> t.wins.(0) <- t.wins.(0) + 1
    | Solver.Unknown -> ());
    res
  end
  else begin
    flush_pending t;
    RA.set t.cancel false;
    let results =
      Array.init n (fun _ -> RC.make ~name:"parallel.results" (Solver.Unknown, []))
    in
    let decisive = RA.make (-1) in
    (* Mutant [parallel-read-before-join]: the caller peeks at every
       member's result slot while the worker domains are still running —
       exactly the cross-domain solver-state read the audit fixed. *)
    let on_spawned () =
      if Race.Mutations.on "parallel-read-before-join" then
        Array.iter (fun c -> ignore (RC.get c)) results
    in
    fan_out ~on_spawned t (fun i ->
        let ((r, _) as res) =
          member_span i (fun () ->
              Solver.solve_with_core ~assumptions ?deadline t.members.(i))
        in
        RC.set results.(i) res;
        match r with
        | Solver.Sat | Solver.Unsat ->
          if RA.compare_and_set decisive (-1) i then
            RA.set t.cancel true
        | Solver.Unknown -> ());
    match RA.get decisive with
    | -1 ->
      t.winner <- 0;
      (Solver.Unknown, [])
    | w ->
      t.winner <- w;
      t.wins.(w) <- t.wins.(w) + 1;
      Obs.Metrics.set g_winner (float_of_int w);
      RC.get results.(w)
  end

let solve ?assumptions ?deadline t =
  fst (solve_with_core ?assumptions ?deadline t)

(* Cube-and-conquer execution: the cubes are drawn from a shared atomic
   counter, so members load-balance themselves.  Soundness of the merged
   UNSAT core requires the cube set to be exhaustive (every assignment
   of the branch variables extends some cube): a model of the formula
   plus the merged core would then satisfy some cube's full assumption
   set, contradicting that cube's refutation. *)
let solve_cubes ?(assumptions = []) ?deadline t ~cubes =
  match cubes with
  | [] -> solve_with_core ~assumptions ?deadline t
  | _ ->
    let n = Array.length t.members in
    let cubes = Array.of_list cubes in
    let n_cubes = Array.length cubes in
    flush_pending t;
    RA.set t.cancel false;
    let next = RA.make 0 in
    let sat_winner = RA.make (-1) in
    let unknown = RA.make false in
    let cores = Array.init n (fun _ -> RC.make ~name:"parallel.cores" []) in
    fan_out t (fun i ->
        let m = t.members.(i) in
        let continue = ref true in
        while !continue do
          if RA.get t.cancel then continue := false
          else begin
            let j = RA.fetch_and_add next 1 in
            if j >= n_cubes then continue := false
            else
              let r =
                member_span i (fun () ->
                    Solver.solve_with_core
                      ~assumptions:(assumptions @ cubes.(j))
                      ?deadline m)
              in
              match r with
              | Solver.Sat, _ ->
                if RA.compare_and_set sat_winner (-1) i then
                  RA.set t.cancel true;
                continue := false
              | Solver.Unsat, core ->
                (* Cube literals are split over exhaustively, so only the
                   caller's assumptions survive into the merged core. *)
                let keep =
                  List.filter (fun l -> List.mem l assumptions) core
                in
                RC.set cores.(i) (keep @ RC.get cores.(i))
              | Solver.Unknown, _ ->
                RA.set unknown true;
                continue := false
          end
        done);
    (match RA.get sat_winner with
    | w when w >= 0 ->
      t.winner <- w;
      t.wins.(w) <- t.wins.(w) + 1;
      Obs.Metrics.set g_winner (float_of_int w);
      (Solver.Sat, [])
    | _ ->
      if RA.get unknown then begin
        t.winner <- 0;
        (Solver.Unknown, [])
      end
      else begin
        t.winner <- 0;
        let core =
          List.sort_uniq Lit.compare
            (List.concat (Array.to_list (Array.map RC.get cores)))
        in
        (Solver.Unsat, core)
      end)
