(** A CDCL SAT solver (Glucose-class, grown out of the MiniSat lineage).

    Features: two-watched-literal propagation with blocker literals,
    dedicated binary-clause implication lists, first-UIP clause learning
    with recursive conflict-clause minimization, LBD ("glue")-based
    learnt-clause management, VSIDS decision heuristic, phase saving,
    Luby restarts, incremental solving under assumptions, and wall-clock
    deadlines (for anytime MaxSAT) that are honored even inside long
    conflict-free propagation runs. *)

type t

type result = Sat | Unsat | Unknown

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnts_literals : int;
  mutable max_vars : int;
  mutable solve_time : float;
      (** cumulative wall-clock seconds spent inside [solve] *)
  mutable learnt_clauses : int;  (** learnt clauses recorded (incl. units) *)
  mutable learnt_lbd_sum : int;  (** sum of LBD over learnt clauses *)
  mutable glue_clauses : int;  (** learnt clauses with LBD <= 2 *)
  mutable deleted_clauses : int;  (** learnts evicted by [reduce_db] *)
  mutable db_reductions : int;  (** number of [reduce_db] passes *)
  mutable imported_clauses : int;
      (** clauses adopted from portfolio siblings via {!set_import} *)
}

val copy_stats : stats -> stats
(** A snapshot: [stats t] is live and mutated by the solver. *)

val props_per_second : stats -> float
(** Propagations per second of solve time; 0 when no time was recorded. *)

val avg_learnt_lbd : stats -> float
(** Mean LBD over all learnt clauses; 0 when nothing was learnt. *)

(** {2 Process-wide totals}

    Counters aggregated across every solver instance in the process
    (updated once per [solve] call, atomically, so the parallel portfolio
    is accounted correctly).  Benchmarks and the CLI read deltas of these
    around a routing call instead of threading a stats channel through
    every layer. *)

type totals = {
  total_propagations : int;
  total_conflicts : int;
  total_decisions : int;
  total_restarts : int;
  total_learnts : int;
  total_lbd_sum : int;
  total_glue : int;
  total_deleted : int;
  total_reductions : int;
  total_solve_time : float;
}

val totals : unit -> totals
val reset_totals : unit -> unit

val sub_totals : totals -> totals -> totals
(** [sub_totals after before] is the component-wise difference. *)

val totals_props_per_second : totals -> float
val totals_avg_lbd : totals -> float

exception Sanitizer_violation of string
(** Raised by the invariant sanitizer: a structural solver invariant —
    not a property of the input formula — was found violated. *)

val create : ?sanitize:bool -> unit -> t
(** [sanitize] arms the invariant sanitizer: watch-list integrity
    (including blocker coherence), binary-list symmetry, trail/level/
    reason consistency and VSIDS-heap membership are checked every 1024
    conflicts, and the assignment is re-checked against every problem
    clause before [Sat] is returned.  Defaults to the [SATMAP_SANITIZE]
    environment variable ([1]/[true]/[yes]/[on]); costs a single boolean
    test per conflict when off. *)

val new_var : t -> Lit.var
(** Allocate a fresh variable (numbered consecutively from 0). *)

val n_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause.  Must only be called between [solve] calls (the
    solver is at decision level 0 then).  Adding the empty clause (or a
    clause falsified at level 0) makes the solver permanently unsat. *)

val solve : ?assumptions:Lit.t list -> ?deadline:float -> t -> result
(** Solve the current clause set.  [assumptions] are temporarily-forced
    literals; [Unsat] under assumptions does not poison the solver.
    [deadline] is an absolute [Unix.gettimeofday] instant after which the
    search gives up and returns [Unknown]. *)

val solve_with_core :
  ?assumptions:Lit.t list -> ?deadline:float -> t -> result * Lit.t list
(** Like [solve]; on [Unsat] under assumptions additionally returns an
    unsatisfiable core — a subset of the assumptions that already
    conflicts with the clause set (empty when the clauses alone are
    unsat).  The core is the final-conflict set, not guaranteed minimal. *)

val set_polarity : t -> Lit.var -> bool -> unit
(** Set the initial decision phase of a variable (e.g. bias soft-clause
    literals towards satisfaction so the first model is already cheap). *)

val model_value : t -> Lit.var -> bool
(** Value of a variable in the most recent satisfying model.  Only
    meaningful right after [solve] returned [Sat]. *)

val value_lit : t -> Lit.t -> int
(** Current assignment of a literal: -1 undefined, 0 false, 1 true.  At
    decision level 0 this exposes the roots implied by the clause set. *)

val set_sanitize : t -> bool -> unit
(** Arm or disarm the invariant sanitizer (see {!create}). *)

val sanitize_enabled : t -> bool

val sanitize_check : t -> unit
(** Run the invariant sanitizer once, immediately.  Raises
    {!Sanitizer_violation} on corruption; a no-op on a healthy solver.
    Exposed for tests and for post-mortem checks around a suspect
    [solve] call. *)

val set_on_learnt : t -> (Lit.t array -> int -> unit) option -> unit
(** Install (or remove) a learnt-clause export callback, called as
    [f lits lbd] for every clause learnt during search — the clause-
    sharing tap of the parallel portfolio.  [lits] is the solver's live
    clause array: callbacks must copy it and must not block.  [None]
    (the default) costs one branch per learnt clause. *)

val set_import : t -> (unit -> (Lit.t array * int) list) option -> unit
(** Install (or remove) a clause-import source.  The solver drains it —
    a list of [(lits, lbd)] pairs — at the start of every [solve] call
    and at every restart, always at decision level 0.  Imported clauses
    must be consequences of the solver's problem formula (clause sharing
    between portfolio members over the same instance qualifies: clauses
    learnt under assumptions carry those assumptions negated).  Imports
    are silently disabled while a proof sink is installed, because an
    imported clause is not RUP-derivable within this solver's own trace. *)

val set_cancel : t -> bool Race.Sync.Atomic.t option -> unit
(** Install (or remove) a cooperative cancellation flag, polled at the
    same cadence as the deadline; when it reads [true] the search gives
    up and returns [Unknown]. *)

val set_restart_base : t -> float -> unit
(** Base conflict budget of the Luby restart sequence (default 100).
    Raises [Invalid_argument] below 1. *)

val set_reduce_db_params : t -> first:int -> inc:int -> unit
(** Learnt-DB reduction schedule: the first pass fires after [first]
    conflicts, each later pass [first + inc * passes] conflicts after
    the previous one (glucose-style; defaults 2000/300). *)

val probe_literal : t -> Lit.t -> int option
(** Lookahead probe: decide the literal at a fresh decision level,
    propagate, undo, and return the number of literals the propagation
    fixed (the literal itself included).  [None] when the probe hit a
    conflict — the literal fails at the root; [Some 0] when it is
    already assigned.  Only legal between [solve] calls. *)

val set_proof_sink : t -> Proof.sink option -> unit
(** Install (or remove) a proof-event sink.  While a sink is installed the
    solver reports every learnt clause (including units from conflict
    analysis and the empty clause at a level-0 refutation) as
    {!Proof.Learn} and every [reduce_db] eviction as {!Proof.Delete} — the
    DRUP trace of the solver's reasoning.  [None] (the default) costs a
    single branch per learnt clause. *)

val reduce_db : t -> unit
(** Force a learnt-database reduction pass (glucose retention: glue,
    binary and locked clauses survive; the worst half of the rest by
    LBD-then-activity is dropped).  Normally triggered automatically
    during search; exposed for tests and tuning experiments. *)

val ok : t -> bool
(** [false] once the clause set has been proved unsat at level 0. *)

val stats : t -> stats
val n_clauses : t -> int
val n_learnts : t -> int
