(* A CDCL SAT solver, upgraded from the MiniSat-2005 baseline to a
   Glucose-class engine:

   - watch lists hold {clause; blocker} records, so clauses already
     satisfied by the blocker literal are skipped without touching clause
     memory;
   - binary clauses live in dedicated implication lists and propagate
     without any clause inspection;
   - every learnt clause carries its literal-block distance (LBD); the
     learnt database is reduced glucose-style (glue clauses with LBD <= 2
     are kept forever, evictions sorted by LBD then activity);
   - conflict clauses are minimized recursively (MiniSat ccmin=2) with an
     explicit stack;
   - deadlines are also checked inside [propagate] (every
     [deadline_check_interval] propagations), so long conflict-free runs
     on huge trails cannot overshoot an anytime budget.

   Literal/variable conventions follow {!Lit}: literals are packed
   integers so they can index the watch-list arrays directly.  A clause
   watches its first two literals; a watch list is keyed by the watched
   literal itself and visited when that literal becomes false. *)

type clause = {
  mutable lits : Lit.t array;
  mutable cla_act : float;
  mutable lbd : int;  (* literal-block distance; 0 for problem clauses *)
  learnt : bool;
  mutable removed : bool;
}

(* A watcher for clauses of length >= 3.  [blocker] is some literal of the
   clause (initially the other watched literal): when it is true the
   clause is satisfied and the watcher is kept without loading the clause. *)
type watcher = { cref : clause; mutable blocker : Lit.t }

(* A binary-clause watcher: when the keying literal becomes false,
   [implied] must become true.  The clause itself is only consulted when a
   reason or conflict clause is needed. *)
type bin_watcher = { implied : Lit.t; bin_cref : clause }

type result = Sat | Unsat | Unknown

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnts_literals : int;
  mutable max_vars : int;
  mutable solve_time : float;
  mutable learnt_clauses : int;
  mutable learnt_lbd_sum : int;
  mutable glue_clauses : int;
  mutable deleted_clauses : int;
  mutable db_reductions : int;
  mutable imported_clauses : int;
}

let copy_stats (s : stats) = { s with conflicts = s.conflicts }

let props_per_second (s : stats) =
  if s.solve_time <= 0.0 then 0.0
  else float_of_int s.propagations /. s.solve_time

let avg_learnt_lbd (s : stats) =
  if s.learnt_clauses = 0 then 0.0
  else float_of_int s.learnt_lbd_sum /. float_of_int s.learnt_clauses

(* ------------------------------------------------------------------ *)
(* Process-wide totals, aggregated over every solver instance.  The
   benchmark harness and the CLI read deltas of these around a routing
   call, which avoids threading a stats channel through every layer of
   router/optimizer plumbing.  Atomics keep the parallel portfolio
   (one solver per domain) race-free. *)

type totals = {
  total_propagations : int;
  total_conflicts : int;
  total_decisions : int;
  total_restarts : int;
  total_learnts : int;
  total_lbd_sum : int;
  total_glue : int;
  total_deleted : int;
  total_reductions : int;
  total_solve_time : float;
}

let g_props = Atomic.make 0
let g_conflicts = Atomic.make 0
let g_decisions = Atomic.make 0
let g_restarts = Atomic.make 0
let g_learnts = Atomic.make 0
let g_lbd_sum = Atomic.make 0
let g_glue = Atomic.make 0
let g_deleted = Atomic.make 0
let g_reductions = Atomic.make 0
let g_time = Atomic.make 0.0

let add_time x =
  let rec go () =
    let cur = Atomic.get g_time in
    if not (Atomic.compare_and_set g_time cur (cur +. x)) then go ()
  in
  go ()

let totals () =
  {
    total_propagations = Atomic.get g_props;
    total_conflicts = Atomic.get g_conflicts;
    total_decisions = Atomic.get g_decisions;
    total_restarts = Atomic.get g_restarts;
    total_learnts = Atomic.get g_learnts;
    total_lbd_sum = Atomic.get g_lbd_sum;
    total_glue = Atomic.get g_glue;
    total_deleted = Atomic.get g_deleted;
    total_reductions = Atomic.get g_reductions;
    total_solve_time = Atomic.get g_time;
  }

let reset_totals () =
  Atomic.set g_props 0;
  Atomic.set g_conflicts 0;
  Atomic.set g_decisions 0;
  Atomic.set g_restarts 0;
  Atomic.set g_learnts 0;
  Atomic.set g_lbd_sum 0;
  Atomic.set g_glue 0;
  Atomic.set g_deleted 0;
  Atomic.set g_reductions 0;
  Atomic.set g_time 0.0

let sub_totals a b =
  {
    total_propagations = a.total_propagations - b.total_propagations;
    total_conflicts = a.total_conflicts - b.total_conflicts;
    total_decisions = a.total_decisions - b.total_decisions;
    total_restarts = a.total_restarts - b.total_restarts;
    total_learnts = a.total_learnts - b.total_learnts;
    total_lbd_sum = a.total_lbd_sum - b.total_lbd_sum;
    total_glue = a.total_glue - b.total_glue;
    total_deleted = a.total_deleted - b.total_deleted;
    total_reductions = a.total_reductions - b.total_reductions;
    total_solve_time = a.total_solve_time -. b.total_solve_time;
  }

let totals_props_per_second (t : totals) =
  if t.total_solve_time <= 0.0 then 0.0
  else float_of_int t.total_propagations /. t.total_solve_time

let totals_avg_lbd (t : totals) =
  if t.total_learnts = 0 then 0.0
  else float_of_int t.total_lbd_sum /. float_of_int t.total_learnts

(* Observability: process-wide metric cells (interned once here) and the
   per-[solve] span.  Everything is updated at solve-call granularity —
   the search loop itself only pays one [Obs.Trace.enabled] branch at
   each restart, where propagations/s is sampled for the trace. *)
let m_solves = Obs.Metrics.counter "sat.solves"

(* Solver instantiations.  The incremental routing path keeps one solver
   alive across descent bounds, slices and retries, so this counter is
   the direct measure of how much re-creation the reuse machinery
   avoids: a sliced route with B blocks and reuse window W should create
   about ceil(B/W) solvers, not B-plus-escalations. *)
let m_created = Obs.Metrics.counter "solver.created"
let m_conflicts = Obs.Metrics.counter "sat.conflicts"
let m_propagations = Obs.Metrics.counter "sat.propagations"
let m_restarts = Obs.Metrics.counter "sat.restarts"
let m_reductions = Obs.Metrics.counter "sat.reduce_db"
let m_learnts = Obs.Metrics.counter "sat.learnt_clauses"
let m_imported = Obs.Metrics.counter "sat.imported_clauses"
let g_props_per_s = Obs.Metrics.gauge "sat.props_per_s"

(* ------------------------------------------------------------------ *)

type t = {
  (* Clause database *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  (* Assignment state; arrays are indexed by variable unless noted. *)
  mutable assigns : int array;        (* -1 undef / 0 false / 1 true *)
  mutable level : int array;
  mutable reason : clause option array;
  mutable watches : watcher Vec.t array;        (* indexed by literal *)
  mutable bin_watches : bin_watcher Vec.t array;  (* indexed by literal *)
  trail : Lit.t Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  (* Decision heuristics *)
  mutable activity : float array;
  mutable polarity : bool array;
  order : Heap.t ref;
  mutable var_inc : float;
  mutable cla_inc : float;
  (* Scratch *)
  mutable seen : bool array;
  mutable lbd_stamp : int array;      (* indexed by decision level *)
  mutable lbd_gen : int;
  mutable nvars : int;
  mutable ok : bool;
  mutable model : int array;          (* copy of assigns at last Sat *)
  (* Deadline plumbing for [propagate] *)
  mutable deadline : float;           (* 0.0 = none *)
  mutable stop : bool;
  mutable prop_countdown : int;
  (* Cooperative cancellation for the parallel portfolio: polled at the
     same cadence as the deadline, so a winning sibling stops this solver
     within one check interval. *)
  mutable cancel : bool Race.Sync.Atomic.t option;
  (* Clause-exchange hooks (parallel portfolio).  [on_learnt] fires for
     every learnt clause (the array is the live clause — callbacks must
     copy); [import_fn] is drained at solve start and at every restart,
     while the solver sits at level 0. *)
  mutable on_learnt : (Lit.t array -> int -> unit) option;
  mutable import_fn : (unit -> (Lit.t array * int) list) option;
  (* Search-shape knobs, the portfolio's diversification surface. *)
  mutable restart_base : float;
  mutable reduce_first : int;
  mutable reduce_inc : int;
  mutable next_reduce : int;          (* conflict count of the next pass *)
  (* Proof logging: [None] (the default) costs one branch per learnt
     clause; when set, every learnt clause, level-0 refutation and
     [reduce_db] eviction is reported (see {!Proof}). *)
  mutable proof : Proof.sink option;
  (* Invariant sanitizer: when true, [sanitize_check] runs every
     [sanitize_interval] conflicts (and the model is re-checked against
     the problem clauses at every Sat).  Off by default; one boolean test
     per conflict when off. *)
  mutable sanitize : bool;
  stats : stats;
}

exception Sanitizer_violation of string

let emit_learn t lits =
  match t.proof with
  | None -> ()
  | Some sink -> sink (Proof.Learn (Array.copy lits))

let emit_delete t lits =
  match t.proof with
  | None -> ()
  | Some sink -> sink (Proof.Delete (Array.copy lits))

(* The empty clause: emitted once, at the moment level-0 unsatisfiability
   is established ([ok] flips to false). *)
let emit_refutation t = emit_learn t [||]

let dummy_lit = Lit.of_var 0

let dummy_clause =
  { lits = [||]; cla_act = 0.0; lbd = 0; learnt = false; removed = true }

let dummy_watcher = { cref = dummy_clause; blocker = dummy_lit }

let dummy_bin_watcher = { implied = dummy_lit; bin_cref = dummy_clause }

let var_decay = 1.0 /. 0.95
let clause_decay = 1.0 /. 0.999

(* How many propagations between wall-clock deadline checks: small enough
   that a deadline overshoot stays well under 100ms, large enough that the
   clock read is invisible in the propagation rate. *)
let deadline_check_interval = 2048

(* Conflicts between sanitizer passes (power of two: tested with a mask). *)
let sanitize_interval = 1024

(* Glucose-style reduce_db schedule: first pass after [reduce_db_first]
   conflicts, then increasingly far apart.  Conflict counts accumulate
   across incremental [solve] calls, so reductions fire in long MaxSAT
   descents too (the old learnts-vs-trail size trigger never did at
   mapping scale). *)
let reduce_db_first = 2000
let reduce_db_inc = 300

let sanitize_default =
  lazy
    (match Sys.getenv_opt "SATMAP_SANITIZE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let create ?sanitize () =
  let solver =
    {
      clauses = Vec.create ~dummy:dummy_clause;
      learnts = Vec.create ~dummy:dummy_clause;
      assigns = Array.make 16 (-1);
      level = Array.make 16 (-1);
      reason = Array.make 16 None;
      watches = Array.init 32 (fun _ -> Vec.create ~dummy:dummy_watcher);
      bin_watches =
        Array.init 32 (fun _ -> Vec.create ~dummy:dummy_bin_watcher);
      trail = Vec.create ~dummy:dummy_lit;
      trail_lim = Vec.create ~dummy:0;
      qhead = 0;
      activity = Array.make 16 0.0;
      polarity = Array.make 16 false;
      order = ref (Heap.create (fun _ _ -> false));
      var_inc = 1.0;
      cla_inc = 1.0;
      seen = Array.make 16 false;
      lbd_stamp = Array.make 17 0;
      lbd_gen = 0;
      nvars = 0;
      ok = true;
      model = [||];
      deadline = 0.0;
      stop = false;
      prop_countdown = deadline_check_interval;
      cancel = None;
      on_learnt = None;
      import_fn = None;
      restart_base = 100.0;
      reduce_first = reduce_db_first;
      reduce_inc = reduce_db_inc;
      next_reduce = reduce_db_first;
      proof = None;
      sanitize =
        (match sanitize with
        | Some b -> b
        | None -> Lazy.force sanitize_default);
      stats =
        {
          conflicts = 0;
          decisions = 0;
          propagations = 0;
          restarts = 0;
          learnts_literals = 0;
          max_vars = 0;
          solve_time = 0.0;
          learnt_clauses = 0;
          learnt_lbd_sum = 0;
          glue_clauses = 0;
          deleted_clauses = 0;
          db_reductions = 0;
          imported_clauses = 0;
        };
    }
  in
  (* The heap ordering must read the *current* activity array, which is
     replaced on growth; hence it goes through the record field. *)
  solver.order :=
    Heap.create (fun x y -> solver.activity.(x) > solver.activity.(y));
  Obs.Metrics.incr m_created;
  solver

let n_vars t = t.nvars

let ensure_var_capacity t n =
  let cap = Array.length t.assigns in
  if n > cap then begin
    let cap' = max n (2 * cap) in
    let grow_int a fill =
      let a' = Array.make cap' fill in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.assigns <- grow_int t.assigns (-1);
    t.level <- grow_int t.level (-1);
    let reason' = Array.make cap' None in
    Array.blit t.reason 0 reason' 0 cap;
    t.reason <- reason';
    let act' = Array.make cap' 0.0 in
    Array.blit t.activity 0 act' 0 cap;
    t.activity <- act';
    let pol' = Array.make cap' false in
    Array.blit t.polarity 0 pol' 0 cap;
    t.polarity <- pol';
    let seen' = Array.make cap' false in
    Array.blit t.seen 0 seen' 0 cap;
    t.seen <- seen';
    (* One decision level per variable at most, hence cap' + 1 slots. *)
    let stamp' = Array.make (cap' + 1) 0 in
    Array.blit t.lbd_stamp 0 stamp' 0 (Array.length t.lbd_stamp);
    t.lbd_stamp <- stamp';
    let w' = Array.init (2 * cap') (fun _ -> Vec.create ~dummy:dummy_watcher) in
    Array.blit t.watches 0 w' 0 (2 * cap);
    t.watches <- w';
    let bw' =
      Array.init (2 * cap') (fun _ -> Vec.create ~dummy:dummy_bin_watcher)
    in
    Array.blit t.bin_watches 0 bw' 0 (2 * cap);
    t.bin_watches <- bw'
  end

let new_var t =
  let v = t.nvars in
  ensure_var_capacity t (v + 1);
  t.nvars <- v + 1;
  t.stats.max_vars <- t.nvars;
  Heap.insert !(t.order) v;
  v

(* Value of a literal: -1 undef, 0 false, 1 true. *)
let value_lit t l =
  let v = t.assigns.(Lit.var l) in
  if v < 0 then -1 else v lxor ((l :> int) land 1)


let decision_level t = Vec.size t.trail_lim

let enqueue t l reason =
  t.assigns.(Lit.var l) <- (if Lit.sign l then 1 else 0);
  t.level.(Lit.var l) <- decision_level t;
  t.reason.(Lit.var l) <- reason;
  Vec.push t.trail l

(* Literal-block distance of a (fully assigned) set of literals: the
   number of distinct non-root decision levels it spans.  Uses a
   generation-stamped per-level scratch array, so each call is O(|lits|). *)
let compute_lbd t (lits : Lit.t array) =
  t.lbd_gen <- t.lbd_gen + 1;
  let g = t.lbd_gen in
  let n = ref 0 in
  Array.iter
    (fun l ->
      let lv = t.level.(Lit.var l) in
      if lv > 0 && t.lbd_stamp.(lv) <> g then begin
        t.lbd_stamp.(lv) <- g;
        incr n
      end)
    lits;
  !n

(* Unit propagation.  Returns the conflicting clause if a conflict was
   found.  Binary clauses propagate straight off their implication lists;
   longer clauses go through blocker-guarded two-watched-literal lists. *)
let propagate t =
  let conflict = ref None in
  while !conflict = None && (not t.stop) && t.qhead < Vec.size t.trail do
    let p = Vec.get t.trail t.qhead in
    t.qhead <- t.qhead + 1;
    t.stats.propagations <- t.stats.propagations + 1;
    t.prop_countdown <- t.prop_countdown - 1;
    if t.prop_countdown <= 0 then begin
      t.prop_countdown <- deadline_check_interval;
      if t.deadline > 0.0 && Unix.gettimeofday () > t.deadline then
        t.stop <- true;
      (match t.cancel with
      | Some c when Race.Sync.Atomic.get c -> t.stop <- true
      | Some _ | None -> ())
    end;
    let false_lit = Lit.neg p in
    (* Binary implication lists: no clause memory touched, no watch
       relocation ever needed. *)
    let bws = t.bin_watches.((false_lit :> int)) in
    let nb = Vec.size bws in
    let bi = ref 0 in
    while !conflict = None && !bi < nb do
      let bw = Vec.unsafe_get bws !bi in
      incr bi;
      match value_lit t bw.implied with
      | -1 -> enqueue t bw.implied (Some bw.bin_cref)
      | 0 -> conflict := Some bw.bin_cref
      | _ -> ()
    done;
    if !conflict = None then begin
      let ws = t.watches.((false_lit :> int)) in
      let n = Vec.size ws in
      let j = ref 0 in
      let i = ref 0 in
      while !i < n do
        let w = Vec.unsafe_get ws !i in
        incr i;
        if w.cref.removed then () (* drop lazily *)
        else if !conflict <> None then begin
          (* conflict found: keep the remaining watchers *)
          Vec.unsafe_set ws !j w;
          incr j
        end
        else if value_lit t w.blocker = 1 then begin
          (* Satisfied via the blocker: clause memory never loaded. *)
          Vec.unsafe_set ws !j w;
          incr j
        end
        else begin
          let c = w.cref in
          (* Make sure the false literal is at position 1. *)
          let lits = c.lits in
          if Lit.equal (Array.unsafe_get lits 0) false_lit then begin
            Array.unsafe_set lits 0 (Array.unsafe_get lits 1);
            Array.unsafe_set lits 1 false_lit
          end;
          let first = Array.unsafe_get lits 0 in
          if value_lit t first = 1 then begin
            (* Clause already satisfied: keep the watch, remember the
               satisfying literal as the new blocker. *)
            w.blocker <- first;
            Vec.unsafe_set ws !j w;
            incr j
          end
          else begin
            (* Look for a new literal to watch. *)
            let len = Array.length lits in
            let k = ref 2 in
            while !k < len && value_lit t (Array.unsafe_get lits !k) = 0 do
              incr k
            done;
            if !k < len then begin
              (* Relocate the watch (reusing the watcher record). *)
              Array.unsafe_set lits 1 (Array.unsafe_get lits !k);
              Array.unsafe_set lits !k false_lit;
              w.blocker <- first;
              Vec.push t.watches.(((Array.unsafe_get lits 1) :> int)) w
            end
            else begin
              (* Clause is unit or conflicting. *)
              Vec.unsafe_set ws !j w;
              incr j;
              if value_lit t first = 0 then conflict := Some c
              else enqueue t first (Some c)
            end
          end
        end
      done;
      Vec.shrink ws !j
    end
  done;
  !conflict

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for i = 0 to t.nvars - 1 do
      t.activity.(i) <- t.activity.(i) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  Heap.update !(t.order) v

let var_decay_activity t = t.var_inc <- t.var_inc *. var_decay

let clause_bump t c =
  c.cla_act <- c.cla_act +. t.cla_inc;
  if c.cla_act > 1e20 then begin
    Vec.iter (fun c -> c.cla_act <- c.cla_act *. 1e-20) t.learnts;
    t.cla_inc <- t.cla_inc *. 1e-20
  end

let clause_decay_activity t = t.cla_inc <- t.cla_inc *. clause_decay

let cancel_until t lvl =
  if decision_level t > lvl then begin
    let bound = Vec.get t.trail_lim lvl in
    for i = Vec.size t.trail - 1 downto bound do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      t.assigns.(v) <- -1;
      t.reason.(v) <- None;
      t.polarity.(v) <- Lit.sign l;
      if not (Heap.mem !(t.order) v) then Heap.insert !(t.order) v
    done;
    Vec.shrink t.trail bound;
    Vec.shrink t.trail_lim lvl;
    t.qhead <- Vec.size t.trail
  end

(* First-UIP conflict analysis with recursive clause minimization
   (MiniSat ccmin=2).  Returns the learnt clause (asserting literal
   first), the backjump level, and the clause's LBD (computed before
   backjumping, while all its literals are still assigned). *)
let analyze t confl =
  let learnt = ref [] in
  let pathc = ref 0 in
  let index = ref (Vec.size t.trail - 1) in
  let p = ref None in
  let c = ref confl in
  let seen_vars = ref [] in
  let dl = decision_level t in
  let continue = ref true in
  while !continue do
    let cl = !c in
    if cl.learnt then begin
      clause_bump t cl;
      (* Glucose: tighten the stored LBD when the clause takes part in a
         conflict — cheap and keeps glue detection honest. *)
      if cl.lbd > 2 then begin
        let l' = compute_lbd t cl.lits in
        if l' < cl.lbd then cl.lbd <- l'
      end
    end;
    (* Skip the implied literal when expanding a reason.  Binary reasons
       do not maintain the implied-literal-first invariant, so the skip is
       by variable rather than by position. *)
    let skip_var = match !p with None -> -1 | Some pl -> Lit.var pl in
    Array.iter
      (fun q ->
        let v = Lit.var q in
        if v <> skip_var && (not t.seen.(v)) && t.level.(v) > 0 then begin
          t.seen.(v) <- true;
          seen_vars := v :: !seen_vars;
          var_bump t v;
          if t.level.(v) >= dl then incr pathc
          else learnt := q :: !learnt
        end)
      cl.lits;
    (* Find the next seen literal on the trail. *)
    while not t.seen.(Lit.var (Vec.get t.trail !index)) do
      decr index
    done;
    let pl = Vec.get t.trail !index in
    decr index;
    t.seen.(Lit.var pl) <- false;
    decr pathc;
    if !pathc = 0 then begin
      p := Some pl;
      continue := false
    end
    else begin
      p := Some pl;
      match t.reason.(Lit.var pl) with
      | Some r -> c := r
      | None ->
        (* A decision variable other than the UIP cannot be reached with
           pathc > 0. *)
        assert false
    end
  done;
  (* Recursive clause minimization: a literal is redundant when every path
     from its reason bottoms out in literals already in the clause (seen)
     or fixed at level 0.  The abstract-level filter prunes walks that
     could only fail; the explicit stack replaces MiniSat's recursion. *)
  let abstract_level v = 1 lsl (t.level.(v) land 31) in
  let abstract_levels =
    List.fold_left
      (fun acc q -> acc lor abstract_level (Lit.var q))
      0 !learnt
  in
  let to_clear = ref [] in
  let lit_redundant q =
    match t.reason.(Lit.var q) with
    | None -> false
    | Some _ ->
      let stack = ref [ q ] in
      let marked_here = ref [] in
      let failed = ref false in
      while (not !failed) && !stack <> [] do
        let pl = List.hd !stack in
        stack := List.tl !stack;
        let r =
          match t.reason.(Lit.var pl) with
          | Some r -> r
          | None -> assert false (* only literals with reasons are pushed *)
        in
        let rl = r.lits in
        let len = Array.length rl in
        let idx = ref 0 in
        while (not !failed) && !idx < len do
          let l = rl.(!idx) in
          incr idx;
          let v = Lit.var l in
          if v <> Lit.var pl && (not t.seen.(v)) && t.level.(v) > 0 then begin
            if
              t.reason.(v) <> None
              && abstract_level v land abstract_levels <> 0
            then begin
              t.seen.(v) <- true;
              marked_here := v :: !marked_here;
              to_clear := v :: !to_clear;
              stack := l :: !stack
            end
            else failed := true
          end
        done
      done;
      if !failed then
        (* Undo only this walk's marks; marks from successful walks stay
           and speed up later redundancy checks. *)
        List.iter (fun v -> t.seen.(v) <- false) !marked_here;
      not !failed
  in
  let learnt = List.filter (fun q -> not (lit_redundant q)) !learnt in
  let btlevel =
    List.fold_left (fun acc q -> max acc t.level.(Lit.var q)) 0 learnt
  in
  let uip =
    match !p with
    | Some pl -> Lit.neg pl
    | None -> assert false
  in
  let lits = Array.of_list (uip :: learnt) in
  let lbd = compute_lbd t lits in
  List.iter (fun v -> t.seen.(v) <- false) !seen_vars;
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  (* Put a literal of the backjump level at position 1 so the watches are
     valid after backjumping. *)
  if Array.length lits > 1 then begin
    let max_i = ref 1 in
    for i = 2 to Array.length lits - 1 do
      if t.level.(Lit.var lits.(i)) > t.level.(Lit.var lits.(!max_i)) then
        max_i := i
    done;
    let tmp = lits.(1) in
    lits.(1) <- lits.(!max_i);
    lits.(!max_i) <- tmp
  end;
  (lits, btlevel, lbd)

let attach t c =
  if Array.length c.lits = 2 then begin
    Vec.push
      t.bin_watches.((c.lits.(0) :> int))
      { implied = c.lits.(1); bin_cref = c };
    Vec.push
      t.bin_watches.((c.lits.(1) :> int))
      { implied = c.lits.(0); bin_cref = c }
  end
  else begin
    Vec.push t.watches.((c.lits.(0) :> int)) { cref = c; blocker = c.lits.(1) };
    Vec.push t.watches.((c.lits.(1) :> int)) { cref = c; blocker = c.lits.(0) }
  end

(* ------------------------------------------------------------------ *)
(* Invariant sanitizer.  Structural self-checks over the solver state,
   run every [sanitize_interval] conflicts when [t.sanitize] is set (and
   on demand from tests).  Each check is a solver invariant that CDCL
   correctness depends on; a violation means the engine itself — not the
   input formula — is broken, so it raises instead of returning. *)

let fail_sanitize fmt =
  Printf.ksprintf (fun msg -> raise (Sanitizer_violation msg)) fmt

let sanitize_check t =
  let n_lits = 2 * t.nvars in
  (* Trail, assignment and level consistency. *)
  let n_trail = Vec.size t.trail in
  if t.qhead > n_trail then fail_sanitize "qhead %d beyond trail %d" t.qhead n_trail;
  let n_lims = Vec.size t.trail_lim in
  for d = 0 to n_lims - 1 do
    let b = Vec.get t.trail_lim d in
    if b < 0 || b > n_trail then fail_sanitize "trail_lim %d out of range" b;
    if d > 0 && b < Vec.get t.trail_lim (d - 1) then
      fail_sanitize "trail_lim not monotone"
  done;
  let seg = ref 0 in
  for i = 0 to n_trail - 1 do
    let l = Vec.get t.trail i in
    let v = Lit.var l in
    while !seg < n_lims && Vec.get t.trail_lim !seg <= i do incr seg done;
    if value_lit t l <> 1 then
      fail_sanitize "trail literal %d not assigned true" (Lit.to_int l);
    if t.level.(v) <> !seg then
      fail_sanitize "trail var %d has level %d, expected %d" v t.level.(v) !seg;
    match t.reason.(v) with
    | None -> ()
    | Some c ->
      if c.removed then fail_sanitize "reason clause of var %d is removed" v;
      if not (Array.exists (Lit.equal l) c.lits) then
        fail_sanitize "reason clause of var %d misses its literal" v;
      Array.iter
        (fun q ->
          if (not (Lit.equal q l)) && value_lit t q <> 0 then
            fail_sanitize "reason clause of var %d not falsified elsewhere" v)
        c.lits
  done;
  let assigned = ref 0 in
  for v = 0 to t.nvars - 1 do
    if t.assigns.(v) >= 0 then incr assigned
  done;
  if !assigned <> n_trail then
    fail_sanitize "%d assigned vars but trail holds %d" !assigned n_trail;
  (* VSIDS order: internal heap consistency, and every unassigned variable
     must be decidable (member of the heap). *)
  (try Heap.check_exn !(t.order)
   with Failure msg -> fail_sanitize "%s" msg);
  for v = 0 to t.nvars - 1 do
    if t.assigns.(v) < 0 && not (Heap.mem !(t.order) v) then
      fail_sanitize "unassigned var %d missing from VSIDS heap" v
  done;
  (* Watcher coherence: every live watcher sits on one of the clause's
     first two literals and carries a blocker from the clause. *)
  for i = 0 to n_lits - 1 do
    let key = i in
    Vec.iter
      (fun (w : watcher) ->
        if not w.cref.removed then begin
          let lits = w.cref.lits in
          if Array.length lits < 3 then
            fail_sanitize "short clause in long-clause watch list %d" key;
          if
            not
              (Lit.to_int lits.(0) = key || Lit.to_int lits.(1) = key)
          then fail_sanitize "watcher at %d not on a watched literal" key;
          if not (Array.exists (Lit.equal w.blocker) lits) then
            fail_sanitize "blocker at %d not a literal of its clause" key
        end)
      t.watches.(i);
    Vec.iter
      (fun (bw : bin_watcher) ->
        if not bw.bin_cref.removed then begin
          let lits = bw.bin_cref.lits in
          if Array.length lits <> 2 then
            fail_sanitize "non-binary clause in binary list %d" key;
          let a = Lit.to_int lits.(0) and b = Lit.to_int lits.(1) in
          let o = Lit.to_int bw.implied in
          if not ((a = key && b = o) || (b = key && a = o)) then
            fail_sanitize "binary watcher at %d disagrees with its clause" key
        end)
      t.bin_watches.(i)
  done;
  (* Attachment: every live clause is present in the lists it must be
     watched from (binary lists are symmetric by this check applied to
     both literals). *)
  let check_attached (c : clause) =
    if not c.removed then begin
      let len = Array.length c.lits in
      if len < 2 then fail_sanitize "attached clause of length %d" len;
      if len = 2 then begin
        let present this other =
          Vec.exists
            (fun (bw : bin_watcher) ->
              bw.bin_cref == c && Lit.equal bw.implied other)
            t.bin_watches.(Lit.to_int this)
        in
        if not (present c.lits.(0) c.lits.(1) && present c.lits.(1) c.lits.(0))
        then fail_sanitize "binary clause not symmetrically attached"
      end
      else begin
        let present this =
          Vec.exists (fun (w : watcher) -> w.cref == c)
            t.watches.(Lit.to_int this)
        in
        if not (present c.lits.(0) && present c.lits.(1)) then
          fail_sanitize "clause not attached at its first two literals"
      end
    end
  in
  Vec.iter check_attached t.clauses;
  Vec.iter check_attached t.learnts

(* At a Sat exit the full assignment must satisfy every problem clause —
   the cheapest end-to-end refutation of watch-list or propagation bugs. *)
let sanitize_check_model t =
  Vec.iter
    (fun (c : clause) ->
      if
        (not c.removed)
        && not (Array.exists (fun l -> value_lit t l = 1) c.lits)
      then fail_sanitize "model falsifies a problem clause")
    t.clauses

let record_learnt t lits lbd =
  emit_learn t lits;
  (match t.on_learnt with None -> () | Some f -> f lits lbd);
  t.stats.learnt_clauses <- t.stats.learnt_clauses + 1;
  let lbd = max 1 lbd in
  t.stats.learnt_lbd_sum <- t.stats.learnt_lbd_sum + lbd;
  if lbd <= 2 then t.stats.glue_clauses <- t.stats.glue_clauses + 1;
  if Array.length lits = 1 then enqueue t lits.(0) None
  else begin
    let c = { lits; cla_act = 0.0; lbd; learnt = true; removed = false } in
    attach t c;
    Vec.push t.learnts c;
    clause_bump t c;
    t.stats.learnts_literals <- t.stats.learnts_literals + Array.length lits;
    enqueue t lits.(0) (Some c)
  end

(* Add a problem clause.  Only legal at decision level 0 (the MaxSAT driver
   always backtracks before adding constraints). *)
let add_clause t (lits : Lit.t list) =
  assert (decision_level t = 0);
  if t.ok then begin
    List.iter (fun l -> ensure_var_capacity t (Lit.var l + 1)) lits;
    List.iter
      (fun l ->
        if Lit.var l >= t.nvars then
          invalid_arg "Solver.add_clause: unknown variable")
      lits;
    (* Simplify: drop duplicates and false literals; detect tautologies and
       satisfied clauses. *)
    let sorted = List.sort_uniq Lit.compare lits in
    let tautology =
      List.exists (fun l -> List.exists (Lit.equal (Lit.neg l)) sorted) sorted
    in
    let satisfied = List.exists (fun l -> value_lit t l = 1) sorted in
    if not (tautology || satisfied) then begin
      let remaining = List.filter (fun l -> value_lit t l <> 0) sorted in
      match remaining with
      | [] ->
        t.ok <- false;
        emit_refutation t
      | [ l ] ->
        enqueue t l None;
        if propagate t <> None then begin
          t.ok <- false;
          emit_refutation t
        end
      | _ :: _ :: _ ->
        let c =
          {
            lits = Array.of_list remaining;
            cla_act = 0.0;
            lbd = 0;
            learnt = false;
            removed = false;
          }
        in
        attach t c;
        Vec.push t.clauses c
    end
  end

let locked t c =
  Array.length c.lits > 0
  &&
  let v = Lit.var c.lits.(0) in
  value_lit t c.lits.(0) = 1
  && match t.reason.(v) with Some r -> r == c | None -> false

(* Glucose-style learnt-clause management: glue clauses (LBD <= 2),
   binary clauses, and locked clauses survive forever; the worst half of
   the rest — highest LBD first, lowest activity as the tiebreak — is
   dropped.  Removed clauses are detached lazily by [propagate]. *)
let reduce_db t =
  t.stats.db_reductions <- t.stats.db_reductions + 1;
  let n = Vec.size t.learnts in
  Vec.sort
    (fun a b ->
      if a.lbd <> b.lbd then Int.compare b.lbd a.lbd
      else Float.compare a.cla_act b.cla_act)
    t.learnts;
  let kept = Vec.create ~dummy:dummy_clause in
  Vec.iteri
    (fun i c ->
      let keep =
        Array.length c.lits <= 2 || c.lbd <= 2 || locked t c || i >= n / 2
      in
      if keep then Vec.push kept c
      else begin
        c.removed <- true;
        emit_delete t c.lits;
        t.stats.deleted_clauses <- t.stats.deleted_clauses + 1
      end)
    t.learnts;
  Vec.clear t.learnts;
  Vec.iter (fun c -> Vec.push t.learnts c) kept

(* ------------------------------------------------------------------ *)
(* Clause import (parallel portfolio).  Imports happen only at decision
   level 0.  Every imported clause is a consequence of the shared problem
   formula alone — a clause learnt under assumptions carries those
   assumptions negated inside it — so attaching one preserves
   equivalence.  It is NOT unit-propagation-derivable from this solver's
   own trace, however, so imports are disabled while a proof sink is
   installed (certify mode runs sequentially for exactly this reason). *)

let import_clause t ((lits : Lit.t array), lbd) =
  if
    Array.length lits > 0
    && Array.for_all (fun l -> Lit.var l < t.nvars) lits
    && not (Array.exists (fun l -> value_lit t l = 1) lits)
  then begin
    let remaining =
      Array.of_seq
        (Seq.filter (fun l -> value_lit t l <> 0) (Array.to_seq lits))
    in
    match Array.length remaining with
    | 0 ->
      (* A consequence of the formula is root-falsified: F is unsat. *)
      t.ok <- false
    | 1 ->
      t.stats.imported_clauses <- t.stats.imported_clauses + 1;
      enqueue t remaining.(0) None;
      if propagate t <> None then t.ok <- false
    | _ ->
      let c =
        {
          lits = remaining;
          cla_act = 0.0;
          lbd = max 1 lbd;
          learnt = true;
          removed = false;
        }
      in
      attach t c;
      Vec.push t.learnts c;
      t.stats.imported_clauses <- t.stats.imported_clauses + 1
  end

let do_imports t =
  match t.import_fn with
  | None -> ()
  | Some _ when t.proof <> None -> ()
  | Some drain ->
    if t.ok && decision_level t = 0 then
      List.iter (fun cl -> if t.ok then import_clause t cl) (drain ())

let cancelled t =
  match t.cancel with Some c -> Race.Sync.Atomic.get c | None -> false

(* Luby restart sequence. *)
let luby y i =
  let rec size_seq sz seq = if sz < i + 1 then size_seq ((2 * sz) + 1) (seq + 1) else (sz, seq) in
  let rec loop sz seq i =
    if sz - 1 = i then (y ** float_of_int seq)
    else
      let sz' = (sz - 1) / 2 in
      let seq' = seq - 1 in
      loop sz' seq' (i mod sz')
  in
  let sz, seq = size_seq 1 0 in
  loop sz seq i

exception Found_result of result

(* Compute the subset of assumptions responsible for the falsification of
   assumption [p] (MiniSat's analyzeFinal): walk the trail backwards from
   the top, expanding reasons of marked variables; assumption decisions
   (reason-free, below the real decision levels) that are reached belong
   to the final conflict clause. *)
let analyze_final t p =
  let core = ref [ p ] in
  if decision_level t > 0 then begin
    t.seen.(Lit.var p) <- true;
    let bottom = Vec.get t.trail_lim 0 in
    for i = Vec.size t.trail - 1 downto bottom do
      let l = Vec.get t.trail i in
      let v = Lit.var l in
      if t.seen.(v) then begin
        (match t.reason.(v) with
        | None -> core := l :: !core
        | Some c ->
          Array.iter
            (fun q -> if t.level.(Lit.var q) > 0 then t.seen.(Lit.var q) <- true)
            c.lits);
        t.seen.(v) <- false
      end
    done;
    t.seen.(Lit.var p) <- false
  end;
  List.sort_uniq Lit.compare !core

(* Lookahead probe for cube-and-conquer: decide [l] at a fresh level,
   propagate, report the trail growth, and undo.  [None] means the probe
   hit a conflict (under no assumptions, so the literal fails at the
   root); [Some 0] means the literal is already assigned.  Only legal
   between [solve] calls (decision level 0). *)
let probe_literal t l =
  if not t.ok then None
  else begin
    if Lit.var l >= t.nvars then invalid_arg "Solver.probe_literal";
    cancel_until t 0;
    if propagate t <> None then begin
      t.ok <- false;
      emit_refutation t;
      None
    end
    else
      match value_lit t l with
      | 1 -> Some 0
      | 0 -> None
      | _ ->
        let base = Vec.size t.trail in
        Vec.push t.trail_lim (Vec.size t.trail);
        enqueue t l None;
        let confl = propagate t in
        let delta = Vec.size t.trail - base in
        cancel_until t 0;
        if confl <> None then None else Some delta
  end

let record_solve_totals t ~before ~elapsed =
  let s = t.stats in
  let add a d = if d <> 0 then ignore (Atomic.fetch_and_add a d) in
  add g_props (s.propagations - before.propagations);
  add g_conflicts (s.conflicts - before.conflicts);
  add g_decisions (s.decisions - before.decisions);
  add g_restarts (s.restarts - before.restarts);
  add g_learnts (s.learnt_clauses - before.learnt_clauses);
  add g_lbd_sum (s.learnt_lbd_sum - before.learnt_lbd_sum);
  add g_glue (s.glue_clauses - before.glue_clauses);
  add g_deleted (s.deleted_clauses - before.deleted_clauses);
  add g_reductions (s.db_reductions - before.db_reductions);
  add_time elapsed

let solve_with_core ?(assumptions = []) ?deadline t =
  if not t.ok then (Unsat, [])
  else begin
    let t0 = Unix.gettimeofday () in
    let before = copy_stats t.stats in
    let span =
      if Obs.Trace.enabled () then
        Obs.Trace.start "sat.solve"
          ~args:
            [
              ("vars", Obs.Trace.Int t.nvars);
              ("clauses", Obs.Trace.Int (Vec.size t.clauses));
              ("learnts", Obs.Trace.Int (Vec.size t.learnts));
              ("assumptions", Obs.Trace.Int (List.length assumptions));
            ]
      else Obs.Trace.null_span
    in
    t.deadline <- (match deadline with None -> 0.0 | Some d -> d);
    t.stop <- false;
    t.prop_countdown <- deadline_check_interval;
    let core = ref [] in
    let assumptions = Array.of_list assumptions in
    cancel_until t 0;
    let restarts = ref 0 in
    let result = ref Unknown in
    (try
       if propagate t <> None then begin
         t.ok <- false;
         emit_refutation t;
         raise (Found_result Unsat)
       end;
       if t.stop then raise (Found_result Unknown);
       do_imports t;
       if not t.ok then raise (Found_result Unsat);
       while true do
         let restart_budget =
           int_of_float (t.restart_base *. luby 2.0 !restarts)
         in
         let conflicts_here = ref 0 in
         let restart = ref false in
         while not !restart do
           match propagate t with
           | Some confl ->
             t.stats.conflicts <- t.stats.conflicts + 1;
             incr conflicts_here;
             if decision_level t = 0 then begin
               t.ok <- false;
               emit_refutation t;
               raise (Found_result Unsat)
             end;
             let lits, btlevel, lbd = analyze t confl in
             cancel_until t btlevel;
             record_learnt t lits lbd;
             var_decay_activity t;
             clause_decay_activity t;
             if
               t.sanitize
               && t.stats.conflicts land (sanitize_interval - 1) = 0
             then sanitize_check t;
             (* The propagation countdown covers long conflict-free runs;
                this covers analysis-heavy stretches of short ones. *)
             if
               t.stats.conflicts land 255 = 0
               && ((t.deadline > 0.0 && Unix.gettimeofday () > t.deadline)
                  || cancelled t)
             then raise (Found_result Unknown);
             if !conflicts_here >= restart_budget then begin
               restart := true;
               incr restarts;
               t.stats.restarts <- t.stats.restarts + 1;
               if Obs.Trace.enabled () then begin
                 let dt = Unix.gettimeofday () -. t0 in
                 if dt > 0.0 then
                   Obs.Trace.sample "sat.props_per_s"
                     [
                       ( "props_per_s",
                         float_of_int (t.stats.propagations - before.propagations)
                         /. dt );
                     ]
               end;
               cancel_until t 0;
               do_imports t;
               if not t.ok then raise (Found_result Unsat)
             end
           | None ->
             if t.stop then raise (Found_result Unknown);
             if t.stats.conflicts >= t.next_reduce then begin
               reduce_db t;
               t.next_reduce <-
                 t.stats.conflicts + t.reduce_first
                 + (t.reduce_inc * t.stats.db_reductions)
             end;
             if decision_level t < Array.length assumptions then begin
               (* Decide the next assumption. *)
               let a = assumptions.(decision_level t) in
               if Lit.var a >= t.nvars then
                 invalid_arg "Solver.solve: unknown assumption variable";
               match value_lit t a with
               | 1 -> Vec.push t.trail_lim (Vec.size t.trail)
               | 0 ->
                 core := analyze_final t a;
                 raise (Found_result Unsat)
               | _ ->
                 Vec.push t.trail_lim (Vec.size t.trail);
                 enqueue t a None
             end
             else begin
               t.stats.decisions <- t.stats.decisions + 1;
               (* Pick an unassigned variable with maximal activity. *)
               let v = ref (-1) in
               while !v < 0 && not (Heap.is_empty !(t.order)) do
                 let cand = Heap.remove_min !(t.order) in
                 if t.assigns.(cand) < 0 then v := cand
               done;
               if !v < 0 then begin
                 (* All variables assigned: model found. *)
                 if t.sanitize then sanitize_check_model t;
                 t.model <- Array.sub t.assigns 0 t.nvars;
                 raise (Found_result Sat)
               end;
               Vec.push t.trail_lim (Vec.size t.trail);
               enqueue t (Lit.of_var ~sign:t.polarity.(!v) !v) None
             end
         done
       done
     with Found_result r -> result := r);
    cancel_until t 0;
    t.deadline <- 0.0;
    t.stop <- false;
    let elapsed = Unix.gettimeofday () -. t0 in
    t.stats.solve_time <- t.stats.solve_time +. elapsed;
    record_solve_totals t ~before ~elapsed;
    let s = t.stats in
    Obs.Metrics.incr m_solves;
    Obs.Metrics.add m_conflicts (s.conflicts - before.conflicts);
    Obs.Metrics.add m_propagations (s.propagations - before.propagations);
    Obs.Metrics.add m_restarts (s.restarts - before.restarts);
    Obs.Metrics.add m_reductions (s.db_reductions - before.db_reductions);
    Obs.Metrics.add m_learnts (s.learnt_clauses - before.learnt_clauses);
    Obs.Metrics.add m_imported (s.imported_clauses - before.imported_clauses);
    if elapsed > 0.0 then
      Obs.Metrics.set g_props_per_s
        (float_of_int (s.propagations - before.propagations) /. elapsed);
    if span != Obs.Trace.null_span then
      Obs.Trace.stop span
        ~args:
          [
            ( "result",
              Obs.Trace.Str
                (match !result with
                | Sat -> "sat"
                | Unsat -> "unsat"
                | Unknown -> "unknown") );
            ("conflicts", Obs.Trace.Int (s.conflicts - before.conflicts));
            ("propagations", Obs.Trace.Int (s.propagations - before.propagations));
            ("restarts", Obs.Trace.Int (s.restarts - before.restarts));
          ];
    (!result, !core)
  end

let solve ?assumptions ?deadline t =
  fst (solve_with_core ?assumptions ?deadline t)

(* Initial phase hint: the next time [v] is picked as a decision with no
   saved phase overriding it, assign it [b].  Phase saving updates this on
   backtracking, so hints mostly shape the first descent. *)
let set_polarity t v b =
  if v < 0 || v >= t.nvars then invalid_arg "Solver.set_polarity";
  t.polarity.(v) <- b

let model_value t v =
  if v < 0 || v >= Array.length t.model then
    invalid_arg "Solver.model_value";
  t.model.(v) = 1

let set_proof_sink t sink = t.proof <- sink

let set_on_learnt t f = t.on_learnt <- f

let set_import t f = t.import_fn <- f

let set_cancel t c = t.cancel <- c

let set_restart_base t b =
  if b < 1.0 then invalid_arg "Solver.set_restart_base";
  t.restart_base <- b

let set_reduce_db_params t ~first ~inc =
  if first < 1 || inc < 0 then invalid_arg "Solver.set_reduce_db_params";
  t.reduce_first <- first;
  t.reduce_inc <- inc;
  t.next_reduce <- t.stats.conflicts + first

let set_sanitize t b = t.sanitize <- b

let sanitize_enabled t = t.sanitize

let stats t = t.stats

let ok t = t.ok

let n_clauses t = Vec.size t.clauses

let n_learnts t = Vec.size t.learnts
