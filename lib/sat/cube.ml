(* Cube-and-conquer on top of the portfolio: pick the k most
   constraining branch variables by lookahead probing, fan the 2^k sign
   combinations out as assumption jobs over the portfolio members, and
   fall back to a plain portfolio run whenever splitting has nothing to
   bite on.

   The candidate set comes from the caller (for the QMR encoding, the
   layer-0 map-variable skeleton): probing arbitrary auxiliary variables
   is rarely worth it, probing the variables that pin the initial
   mapping usually is. *)

let m_cube_jobs = Obs.Metrics.counter "sat.cube_jobs"

(* Probing is two propagation passes per candidate; cap the work so a
   huge skeleton cannot dominate a descent iteration. *)
let max_probed_vars = 96

(* k such that 2^k is about twice the member count: enough cubes that no
   member idles after an early refutation, few enough that each cube
   still gets real search time. *)
let branch_count jobs =
  let rec lg n acc = if n <= 1 then acc else lg (n / 2) (acc + 1) in
  lg jobs 0 + 1

let solve_with_core ?(assumptions = []) ?deadline p ~candidates =
  let jobs = Parallel.jobs p in
  if jobs < 2 || candidates = [] then
    Parallel.solve_with_core ~assumptions ?deadline p
  else begin
    (* Score candidates by the product of the two polarities' propagation
       leverage — the classic lookahead heuristic favouring variables
       that constrain both branches.  Failed probes are a free bonus:
       probe(l) = None means the formula alone refutes l, so the unit
       ~l is sound to add for every member. *)
    let scored = ref [] in
    let probed = ref 0 in
    let refuted = ref false in
    List.iter
      (fun v ->
        if (not !refuted) && !probed < max_probed_vars then begin
          incr probed;
          let pos = Lit.of_var v and neg = Lit.of_var ~sign:false v in
          match (Parallel.probe p pos, Parallel.probe p neg) with
          | None, None ->
            (* Both polarities fail at level 0: the formula alone is
               unsatisfiable.  Record the units (they keep the members'
               states consistent) and stop — probing further, let alone
               fanning 2^k cubes out over a refuted formula, is wasted
               work on every portfolio member. *)
            Parallel.add_clause p [ neg ];
            Parallel.add_clause p [ pos ];
            refuted := true
          | None, Some _ -> Parallel.add_clause p [ neg ]
          | Some _, None -> Parallel.add_clause p [ pos ]
          | Some dp, Some dn ->
            if dp > 1 || dn > 1 then
              scored := (((dp * dn) * 1024) + dp + dn, v) :: !scored
        end)
      candidates;
    if !refuted then
      (* The refutation is the formula's own (no assumption involved), so
         the core restricted to the caller's assumptions is empty. *)
      (Solver.Unsat, [])
    else
    let chosen =
      let sorted =
        List.sort (fun (a, _) (b, _) -> Int.compare b a) !scored
      in
      let rec take k = function
        | x :: tl when k > 0 -> snd x :: take (k - 1) tl
        | _ -> []
      in
      take (branch_count jobs) sorted
    in
    match chosen with
    | [] ->
      (* No propagation leverage anywhere: splitting would only dilute
         the members, run the straight portfolio instead. *)
      Parallel.solve_with_core ~assumptions ?deadline p
    | _ ->
      let cubes =
        List.fold_left
          (fun acc v ->
            List.concat_map
              (fun cube ->
                [
                  Lit.of_var v :: cube; Lit.of_var ~sign:false v :: cube;
                ])
              acc)
          [ [] ] chosen
      in
      Obs.Metrics.add m_cube_jobs (List.length cubes);
      Parallel.solve_cubes ~assumptions ?deadline p ~cubes
  end

let solve ?assumptions ?deadline p ~candidates =
  fst (solve_with_core ?assumptions ?deadline p ~candidates)
