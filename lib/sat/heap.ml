(* Indexed binary max-heap over variable indices, ordered by a client
   comparison (VSIDS activity).  Supports decrease/increase-key via [update]
   because we track each element's position. *)

type t = {
  mutable heap : int array;     (* heap.(i) = element at heap position i *)
  mutable indices : int array;  (* indices.(x) = position of x, or -1 *)
  mutable size : int;
  lt : int -> int -> bool;      (* strict "greater priority" ordering *)
}

let create lt = { heap = Array.make 16 (-1); indices = Array.make 16 (-1); size = 0; lt }

let size t = t.size

let is_empty t = t.size = 0

let mem t x = x < Array.length t.indices && t.indices.(x) >= 0

let ensure_index t x =
  if x >= Array.length t.indices then begin
    let n = max (x + 1) (2 * Array.length t.indices) in
    let indices = Array.make n (-1) in
    Array.blit t.indices 0 indices 0 (Array.length t.indices);
    t.indices <- indices
  end

let ensure_heap t n =
  if n > Array.length t.heap then begin
    let cap = max n (2 * Array.length t.heap) in
    let heap = Array.make cap (-1) in
    Array.blit t.heap 0 heap 0 t.size;
    t.heap <- heap
  end

let swap t i j =
  let xi = t.heap.(i) and xj = t.heap.(j) in
  t.heap.(i) <- xj;
  t.heap.(j) <- xi;
  t.indices.(xj) <- i;
  t.indices.(xi) <- j

let rec percolate_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.lt t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      percolate_up t parent
    end
  end

let rec percolate_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let best = ref i in
  if left < t.size && t.lt t.heap.(left) t.heap.(!best) then best := left;
  if right < t.size && t.lt t.heap.(right) t.heap.(!best) then best := right;
  if !best <> i then begin
    swap t i !best;
    percolate_down t !best
  end

let insert t x =
  ensure_index t x;
  if t.indices.(x) < 0 then begin
    ensure_heap t (t.size + 1);
    t.heap.(t.size) <- x;
    t.indices.(x) <- t.size;
    t.size <- t.size + 1;
    percolate_up t (t.size - 1)
  end

let remove_min t =
  if t.size = 0 then invalid_arg "Heap.remove_min";
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    let x = t.heap.(t.size) in
    t.heap.(0) <- x;
    t.indices.(x) <- 0
  end;
  t.indices.(top) <- -1;
  if t.size > 0 then percolate_down t 0;
  top

(* Structural self-check for the solver's sanitizer: the position map and
   the heap array must be mutually inverse, and the heap property must
   hold at every edge. *)
let check_exn t =
  if t.size < 0 || t.size > Array.length t.heap then
    failwith "Heap.check_exn: size out of bounds";
  for i = 0 to t.size - 1 do
    let x = t.heap.(i) in
    if x < 0 || x >= Array.length t.indices then
      failwith "Heap.check_exn: element out of index range";
    if t.indices.(x) <> i then
      failwith "Heap.check_exn: index map disagrees with heap array";
    if i > 0 && t.lt x t.heap.((i - 1) / 2) then
      failwith "Heap.check_exn: heap property violated"
  done;
  Array.iteri
    (fun x pos ->
      if pos >= 0 && (pos >= t.size || t.heap.(pos) <> x) then
        failwith "Heap.check_exn: stale index entry")
    t.indices

(* Re-establish heap order for [x] after its priority changed. *)
let update t x =
  if mem t x then begin
    let i = t.indices.(x) in
    percolate_up t i;
    percolate_down t t.indices.(x)
  end
