(** Clause sinks: targets for CNF generation.

    Encodings are written against this interface so that the same code can
    feed a live {!Solver.t} (incremental solving) or a {!builder}
    (clause counting, DIMACS emission). *)

type t = {
  fresh_var : unit -> Lit.var;
  add_clause : Lit.t list -> unit;
}

val of_solver : Solver.t -> t

type builder

val builder : unit -> builder
val of_builder : builder -> t
val builder_clauses : builder -> Lit.t list list
val builder_n_vars : builder -> int
val builder_n_clauses : builder -> int

val tee : t -> t -> t
(** Duplicate clauses and variable allocation into two sinks.  Both sinks
    must allocate identical variable numbers. *)

val normalize : Lit.t list -> Lit.t list option
(** Canonicalise a clause: sort, drop duplicate literals, and return
    [None] when the clause is a tautology (contains [l] and [neg l]). *)

type sanitize_stats = {
  mutable clauses_seen : int;
  mutable tautologies_dropped : int;
  mutable duplicate_literals_dropped : int;
}
(** Insertion-hygiene counters, reported by the lint engine as
    clause-count deltas. *)

val sanitize_stats : unit -> sanitize_stats
(** Fresh all-zero counters. *)

val sanitizing : ?stats:sanitize_stats -> t -> t
(** Wrap a sink so every inserted clause is {!normalize}d: duplicate
    literals are dropped and tautologies are discarded entirely, with the
    deltas accumulated into [stats]. *)
