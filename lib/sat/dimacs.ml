(* DIMACS CNF / WCNF reading and writing.

   The reproduction hint for this paper flags "sparse solver bindings;
   DIMACS emission workaround": with no MaxSAT solver bindings available we
   solve with the built-in engine, but we also emit standard (W)CNF so that
   any external solver (e.g. Open-WBO-Inc, as used by the paper) can consume
   the very same constraints. *)

let write_cnf out ~n_vars clauses =
  Printf.fprintf out "p cnf %d %d\n" n_vars (List.length clauses);
  List.iter
    (fun clause ->
      List.iter (fun l -> Printf.fprintf out "%d " (Lit.to_dimacs l)) clause;
      output_string out "0\n")
    clauses

(* The (old-style, pre-2022) WCNF header: "p wcnf <vars> <clauses> <top>"
   where clauses with weight [top] are hard. *)
let write_wcnf out ~n_vars ~hard ~soft =
  let top =
    1 + List.fold_left (fun acc (w, _) -> acc + w) 0 soft
  in
  Printf.fprintf out "p wcnf %d %d %d\n" n_vars
    (List.length hard + List.length soft)
    top;
  let emit w clause =
    Printf.fprintf out "%d " w;
    List.iter (fun l -> Printf.fprintf out "%d " (Lit.to_dimacs l)) clause;
    output_string out "0\n"
  in
  List.iter (emit top) hard;
  List.iter (fun (w, clause) -> emit w clause) soft

let with_file path f =
  let out = open_out path in
  Fun.protect ~finally:(fun () -> close_out out) (fun () -> f out)

let cnf_to_file path ~n_vars clauses =
  with_file path (fun out -> write_cnf out ~n_vars clauses)

let wcnf_to_file path ~n_vars ~hard ~soft =
  with_file path (fun out -> write_wcnf out ~n_vars ~hard ~soft)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* Parse a DIMACS CNF file: returns (n_vars, clauses). *)
let parse_cnf_channel ic =
  let n_vars = ref 0 in
  let n_clauses = ref (-1) in
  let clauses = ref [] in
  let current = ref [] in
  (try
     while true do
       let line = input_line ic in
       let line = String.trim line in
       if line = "" || line.[0] = 'c' then ()
       else if line.[0] = 'p' then begin
         match String.split_on_char ' ' line |> List.filter (( <> ) "") with
         | [ "p"; "cnf"; v; c ] ->
           let count what s =
             match int_of_string_opt s with
             | Some n when n >= 0 -> n
             | Some _ | None ->
               parse_error "bad %s count %S in problem line" what s
           in
           n_vars := count "variable" v;
           n_clauses := count "clause" c
         | _ -> parse_error "malformed problem line: %s" line
       end
       else
         String.split_on_char ' ' line
         |> List.filter (( <> ) "")
         |> List.iter (fun tok ->
                let n =
                  try int_of_string tok
                  with Failure _ -> parse_error "bad token %S" tok
                in
                if n = 0 then begin
                  clauses := List.rev !current :: !clauses;
                  current := []
                end
                else begin
                  (* Reject literals outside the declared variable range
                     rather than silently accepting (and later truncating)
                     them. *)
                  if !n_clauses >= 0 && abs n > !n_vars then
                    parse_error "literal %d out of range (header: %d vars)"
                      n !n_vars;
                  current := Lit.of_dimacs n :: !current
                end)
     done
   with End_of_file -> ());
  if !current <> [] then parse_error "trailing clause without terminating 0";
  if !n_clauses >= 0 && List.length !clauses <> !n_clauses then
    parse_error "expected %d clauses, found %d" !n_clauses
      (List.length !clauses);
  (!n_vars, List.rev !clauses)

let parse_cnf_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> parse_cnf_channel ic)

(* Parse a solver's "v" lines into an assignment array indexed by var. *)
let parse_model_lines ~n_vars lines =
  let model = Array.make n_vars false in
  List.iter
    (fun line ->
      let line = String.trim line in
      if String.length line > 0 && line.[0] = 'v' then
        String.sub line 1 (String.length line - 1)
        |> String.split_on_char ' '
        |> List.filter (( <> ) "")
        |> List.iter (fun tok ->
               match int_of_string_opt tok with
               | None | Some 0 -> ()
               | Some n ->
                 let v = abs n - 1 in
                 if v < n_vars then model.(v) <- n > 0))
    lines;
  model
