(** Proof-logging events (the DRUP fragment of DRAT).

    The solver emits one {!event} per learnt clause — including unit
    clauses from conflict analysis, and the empty clause once
    unsatisfiability is established at decision level 0 — and one per
    clause deleted by [reduce_db].  Consumers (trace recording, DRAT file
    emission, the independent checker) live in the [proof] library; this
    module only defines the interface so {!Solver} carries no dependency
    on them. *)

type event =
  | Learn of Lit.t array
      (** A clause added by conflict analysis.  The literal array is a
          snapshot owned by the receiver.  [Learn [||]] asserts that the
          clause set is unsatisfiable. *)
  | Delete of Lit.t array
      (** A learnt clause evicted from the clause database. *)

type sink = event -> unit

val event_lits : event -> Lit.t array
val is_learn : event -> bool
val pp : Format.formatter -> event -> unit
