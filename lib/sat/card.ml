(* Cardinality constraint encodings.

   The "only-one" encoding the paper cites (Gent & Nightingale 2004) is the
   sequential/commander family: linear in the number of literals, which is
   what brings the SATMAP constraint count down to
   O(|Phys| * |Logic| * |C|).  The pairwise encoding is kept both as a
   baseline (EX-MQT-like uses it) and for differential testing. *)

type encoding = Pairwise | Sequential | Commander

let at_least_one (sink : Sink.t) lits =
  match lits with
  | [] -> sink.add_clause [] (* unsatisfiable *)
  | _ -> sink.add_clause lits

let at_most_one_pairwise (sink : Sink.t) lits =
  let arr = Array.of_list lits in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      sink.add_clause [ Lit.neg arr.(i); Lit.neg arr.(j) ]
    done
  done

(* Sinz's sequential counter restricted to "at most one": auxiliary
   variables s_i mean "some x_j with j <= i is true". *)
let at_most_one_sequential (sink : Sink.t) lits =
  let arr = Array.of_list lits in
  let n = Array.length arr in
  if n <= 4 then at_most_one_pairwise sink lits
  else begin
    let s = Array.init (n - 1) (fun _ -> Lit.of_var (sink.fresh_var ())) in
    sink.add_clause [ Lit.neg arr.(0); s.(0) ];
    for i = 1 to n - 2 do
      sink.add_clause [ Lit.neg arr.(i); s.(i) ];
      sink.add_clause [ Lit.neg s.(i - 1); s.(i) ];
      sink.add_clause [ Lit.neg arr.(i); Lit.neg s.(i - 1) ]
    done;
    sink.add_clause [ Lit.neg arr.(n - 1); Lit.neg s.(n - 2) ]
  end

(* Commander encoding (Klieber & Kwon): partition the literals into groups
   of [group_size], AMO pairwise within each group, introduce a commander
   variable per group that is true iff its group contains the true
   literal, and recurse on the commanders.  Linear in the number of
   literals, like the sequential counter, but with a shallower
   propagation structure (two implication hops between any two input
   literals instead of a counter chain). *)
let commander_group_size = 3

let rec at_most_one_commander (sink : Sink.t) lits =
  let n = List.length lits in
  if n <= commander_group_size + 1 then at_most_one_pairwise sink lits
  else begin
    let rec split acc group k = function
      | [] -> List.rev (if group = [] then acc else List.rev group :: acc)
      | l :: rest ->
        if k = commander_group_size then
          split (List.rev group :: acc) [ l ] 1 rest
        else split acc (l :: group) (k + 1) rest
    in
    let groups = split [] [] 0 lits in
    let commanders =
      List.map
        (fun group ->
          let c = Lit.of_var (sink.fresh_var ()) in
          at_most_one_pairwise sink group;
          (* any group member forces the commander ... *)
          List.iter (fun l -> sink.add_clause [ Lit.neg l; c ]) group;
          (* ... and the commander requires a member (keeps c exact, so
             exactly-one over the inputs needs no extra clauses and no
             auxiliary variable is left unconstrained in either
             polarity). *)
          sink.add_clause (Lit.neg c :: group);
          c)
        groups
    in
    at_most_one_commander sink commanders
  end

let at_most_one ?(encoding = Sequential) sink lits =
  match encoding with
  | Pairwise -> at_most_one_pairwise sink lits
  | Sequential -> at_most_one_sequential sink lits
  | Commander -> at_most_one_commander sink lits

let exactly_one ?(encoding = Sequential) sink lits =
  at_least_one sink lits;
  at_most_one ~encoding sink lits

(* Totalizer (Bailleux & Boutonnet): builds sorted output literals
   o_1 >= o_2 >= ... >= o_n such that o_k is true iff at least k inputs are
   true.  Bounding "at most k" is then the single unit clause (not o_{k+1}),
   which makes it ideal for the incremental MaxSAT descent. *)
let totalizer (sink : Sink.t) lits =
  let rec build lits =
    match lits with
    | [] -> [||]
    | [ l ] -> [| l |]
    | _ ->
      let arr = Array.of_list lits in
      let n = Array.length arr in
      let half = n / 2 in
      let left = build (Array.to_list (Array.sub arr 0 half)) in
      let right = build (Array.to_list (Array.sub arr half (n - half))) in
      let nl = Array.length left and nr = Array.length right in
      let out = Array.init (nl + nr) (fun _ -> Lit.of_var (sink.fresh_var ())) in
      (* sum >= a + b  when  left >= a and right >= b *)
      for a = 0 to nl do
        for b = 0 to nr do
          if a + b > 0 then begin
            let clause = ref [ out.(a + b - 1) ] in
            if a > 0 then clause := Lit.neg left.(a - 1) :: !clause;
            if b > 0 then clause := Lit.neg right.(b - 1) :: !clause;
            sink.add_clause !clause
          end;
          (* sum <= a + b  when  left <= a and right <= b, i.e. the
             contrapositive propagation needed for "at most k" bounds *)
          if a + b < nl + nr then begin
            let clause = ref [ Lit.neg out.(a + b) ] in
            if a < nl then clause := left.(a) :: !clause;
            if b < nr then clause := right.(b) :: !clause;
            sink.add_clause !clause
          end
        done
      done;
      out
  in
  build lits

let at_most_k_totalizer (sink : Sink.t) lits k =
  let out = totalizer sink lits in
  let n = Array.length out in
  if k < n then sink.add_clause [ Lit.neg out.(k) ];
  out
