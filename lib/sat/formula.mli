(** Boolean formulas and a Tseitin-style clausification. *)

type t =
  | True
  | False
  | Atom of Lit.t
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

val atom : ?sign:bool -> Lit.var -> t

val eval : (Lit.var -> bool) -> t -> bool
(** Evaluate under a total assignment. *)

val nnf : bool -> t -> t
(** [nnf pos f] pushes negations to the atoms; [pos = false] negates. *)

val add_clause : Sink.t -> Lit.t list -> unit
(** Normalized clause insertion: duplicate literals are dropped and
    tautologies are discarded (see {!Sink.normalize}).  All clauses
    emitted by {!to_lit} and {!assert_in} go through this. *)

val to_lit : Sink.t -> t -> Lit.t
(** Clausify, returning a literal equisatisfiable with the formula. *)

val assert_in : Sink.t -> t -> unit
(** Assert the formula, clausifying directly where possible. *)
