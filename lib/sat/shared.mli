(** Lock-free bounded clause-exchange ring (parallel portfolio).

    Every portfolio member publishes its low-LBD learnt clauses into one
    shared ring and periodically drains the clauses the other members
    published.  The ring is wait-free on the publish side (one
    fetch-and-add plus one atomic store) and lossy under overrun: a
    reader that falls more than the ring size behind silently misses the
    overwritten clauses — a heuristic loss only, never a soundness
    issue. *)

type t

val create : ?size:int -> unit -> t
(** [size] (default 4096, rounded up to a power of two) is the clause
    capacity before old entries are overwritten. *)

val size : t -> int

val publish : t -> src:int -> lbd:int -> Lit.t array -> unit
(** Publish a clause.  Ownership of the array transfers to the ring —
    callers must pass a private copy.  [src] identifies the publishing
    member so it never re-imports its own clauses. *)

val published : t -> int
(** Total clauses ever published (monotone, across all members). *)

val drain : t -> src:int -> cursor:int -> (Lit.t array * int) list * int
(** [drain t ~src ~cursor] returns the [(lits, lbd)] of every resident
    clause with sequence number at least [cursor] that some member other
    than [src] published, oldest first, together with the new cursor.
    Start with [cursor = 0]; each member keeps its own cursor. *)
