(** Indexed binary heap over non-negative integers (variable indices).

    The comparison [lt x y] must return [true] when [x] has strictly higher
    priority than [y]; [remove_min] then returns the highest-priority
    element.  Priorities may change externally, in which case [update] must
    be called to restore the heap invariant. *)

type t

val create : (int -> int -> bool) -> t
val size : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool
val insert : t -> int -> unit
val remove_min : t -> int
val update : t -> int -> unit

val check_exn : t -> unit
(** Verify the heap property and the element/position index maps; raises
    [Failure] on corruption.  Used by the solver's invariant sanitizer. *)
