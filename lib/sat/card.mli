(** Cardinality-constraint CNF encodings.

    The [Sequential] encoding (Sinz counters; the linear "only-one" family
    cited by the paper) is the default; [Pairwise] is quadratic and used by
    the deliberately-naive EX-MQT-like baseline and by tests; [Commander]
    (Klieber & Kwon) is the linear alternative with a shallower
    propagation structure — groups of three with a commander variable
    each, recursing on the commanders. *)

type encoding = Pairwise | Sequential | Commander

val at_least_one : Sink.t -> Lit.t list -> unit
val at_most_one : ?encoding:encoding -> Sink.t -> Lit.t list -> unit
val exactly_one : ?encoding:encoding -> Sink.t -> Lit.t list -> unit

val totalizer : Sink.t -> Lit.t list -> Lit.t array
(** [totalizer sink lits] returns sorted unary-counter outputs [o]:
    [o.(i)] is constrained to be true iff at least [i + 1] of [lits] are
    true.  Asserting [Lit.neg o.(k)] bounds the sum to at most [k] —
    the incremental-bound primitive used by the MaxSAT optimizer. *)

val at_most_k_totalizer : Sink.t -> Lit.t list -> int -> Lit.t array
(** Convenience: build the totalizer and immediately bound it to [k].
    Returns the outputs for later (tighter) bounding. *)
