(** Cube-and-conquer splitting on top of the {!Parallel} portfolio.

    Lookahead-probes the candidate branch variables (for the QMR
    encoding: the layer-0 map-variable skeleton), picks the k most
    constraining ones, and fans the 2^k sign-combination cubes out as
    assumption jobs across the portfolio.  Because the cube set is
    exhaustive by construction, an all-cubes-refuted outcome is a sound
    [Unsat] with a valid merged core.  Falls back to a plain portfolio
    run when the portfolio has a single member, the candidate list is
    empty, or probing finds no propagation leverage.

    Probing doubles as failed-literal detection: any candidate polarity
    the formula refutes by unit propagation is added back as a unit
    clause to every member. *)

val solve_with_core :
  ?assumptions:Lit.t list ->
  ?deadline:float ->
  Parallel.t ->
  candidates:Lit.var list ->
  Solver.result * Lit.t list

val solve :
  ?assumptions:Lit.t list ->
  ?deadline:float ->
  Parallel.t ->
  candidates:Lit.var list ->
  Solver.result
