(* Proof-logging events, in the DRUP fragment of DRAT.

   The event type lives in [lib/sat] so the solver can emit events without
   depending on the proof subsystem; everything that *consumes* events —
   the in-memory trace, the DRAT text/binary file backends, and the
   independent checker — lives in [lib/proof].

   Every clause the solver learns (including units from conflict analysis
   and the empty clause when unsatisfiability is established at level 0)
   is a [Learn]; every clause evicted by [reduce_db] is a [Delete].  The
   literal arrays are snapshots: the solver copies its (mutable) clause
   arrays at emission time, so sinks may retain them. *)

type event =
  | Learn of Lit.t array
  | Delete of Lit.t array

type sink = event -> unit

let event_lits = function Learn lits | Delete lits -> lits

let is_learn = function Learn _ -> true | Delete _ -> false

let pp fmt ev =
  let tag, lits =
    match ev with Learn l -> ("learn", l) | Delete l -> ("delete", l)
  in
  Format.fprintf fmt "%s [" tag;
  Array.iteri
    (fun i l ->
      if i > 0 then Format.fprintf fmt " ";
      Lit.pp fmt l)
    lits;
  Format.fprintf fmt "]"
