(* A lock-free bounded clause-exchange ring for the parallel portfolio
   (the syrup idea: one shared buffer, every member both publishes and
   drains).  Publishers reserve a slot with fetch-and-add on [head] and
   store an immutable entry through an [Atomic.t]; under OCaml 5's
   memory model that publication is safe — a reader either sees [None],
   a fully-built entry, or a newer entry for the same slot.

   The ring is lossy by design: when publishers outrun a reader by more
   than [size] entries the overwritten clauses are simply gone (the
   [seq] stamp detects the overwrite, so a stale or recycled slot is
   never mis-attributed).  Losing shared clauses costs only heuristic
   strength, never soundness. *)

type entry = { seq : int; lits : Lit.t array; lbd : int; src : int }

type t = {
  slots : entry option Atomic.t array;
  mask : int;
  head : int Atomic.t;  (* next sequence number to be written *)
  n_published : int Atomic.t;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(size = 4096) () =
  if size < 1 then invalid_arg "Shared.create: size must be >= 1";
  let size = next_pow2 size in
  {
    slots = Array.init size (fun _ -> Atomic.make None);
    mask = size - 1;
    head = Atomic.make 0;
    n_published = Atomic.make 0;
  }

let size t = t.mask + 1

let publish t ~src ~lbd lits =
  (* The caller hands over ownership of [lits] (Parallel copies the
     solver's live array before calling). *)
  let seq = Atomic.fetch_and_add t.head 1 in
  Atomic.set t.slots.(seq land t.mask) (Some { seq; lits; lbd; src });
  ignore (Atomic.fetch_and_add t.n_published 1)

let published t = Atomic.get t.n_published

(* Collect every entry with sequence number in [cursor, head) that is
   still resident and was not published by [src]; returns the clauses
   oldest-first together with the new cursor.  Entries published while
   we scan are picked up by the next drain. *)
let drain t ~src ~cursor =
  let head = Atomic.get t.head in
  let start = max cursor (head - size t) in
  let acc = ref [] in
  for i = start to head - 1 do
    match Atomic.get t.slots.(i land t.mask) with
    | Some e when e.seq = i && e.src <> src -> acc := (e.lits, e.lbd) :: !acc
    | Some _ | None -> ()
  done;
  (List.rev !acc, head)
