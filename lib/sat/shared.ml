(* A lock-free bounded clause-exchange ring for the parallel portfolio
   (the syrup idea: one shared buffer, every member both publishes and
   drains).  Publishers reserve a slot with fetch-and-add on [head] and
   store an immutable entry through an atomic; under OCaml 5's memory
   model that publication is safe — a reader either sees [None], a
   fully-built entry, or a newer entry for the same slot.

   The ring is lossy by design: when publishers outrun a reader by more
   than [size] entries the overwritten clauses are simply gone (the
   [seq] stamp detects the overwrite, so a stale or recycled slot is
   never mis-attributed).  Losing shared clauses costs only heuristic
   strength, never soundness.

   Atomics go through [Race.Sync.Atomic] so the happens-before detector
   sees the publish/drain edges under [SATMAP_RACE=1]; with the flag
   unset each op is one extra boolean load.  The [shared-plain-*]
   mutants route a shadow access around the atomics to seed detectable
   races (the real ring keeps working while they are active). *)

module RS = Race.Sync.Atomic

type entry = { seq : int; lits : Lit.t array; lbd : int; src : int }

type t = {
  slots : entry option RS.t array;
  mask : int;
  head : int RS.t;  (* next sequence number to be written *)
  n_published : int RS.t;
  (* Shadow locations only touched while a [shared-plain-*] mutant is
     active (i.e. under the explorer); lazily created so the clean path
     never pays for them. *)
  mutable head_shadow : int Race.Cell.t option;
  mutable slot_shadow : entry option Race.Cell.t option;
}

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(size = 4096) () =
  if size < 1 then invalid_arg "Shared.create: size must be >= 1";
  let size = next_pow2 size in
  {
    slots = Array.init size (fun _ -> RS.make None);
    mask = size - 1;
    head = RS.make 0;
    n_published = RS.make 0;
    head_shadow = None;
    slot_shadow = None;
  }

let size t = t.mask + 1

let head_shadow t =
  match t.head_shadow with
  | Some c -> c
  | None ->
    let c = Race.Cell.make ~name:"shared.head" 0 in
    t.head_shadow <- Some c;
    c

let slot_shadow t =
  match t.slot_shadow with
  | Some c -> c
  | None ->
    let c = Race.Cell.make ~name:"shared.slot" None in
    t.slot_shadow <- Some c;
    c

let publish t ~src ~lbd lits =
  (* The caller hands over ownership of [lits] (Parallel copies the
     solver's live array before calling). *)
  let seq = RS.fetch_and_add t.head 1 in
  let e = { seq; lits; lbd; src } in
  RS.set t.slots.(seq land t.mask) (Some e);
  RS.incr t.n_published;
  (* Mutant hooks come after the last release above, so the shadow
     accesses of two publishers are never ordered by the ring's own
     atomics — the detector flags them on every schedule. *)
  if Race.Mutations.on "shared-plain-head" then begin
    let c = head_shadow t in
    Race.Cell.set c (Race.Cell.get c + 1)
  end;
  if Race.Mutations.on "shared-plain-slot" then
    Race.Cell.set (slot_shadow t) (Some e)

let published t = RS.get t.n_published

(* Collect every entry with sequence number in [cursor, head) that is
   still resident and was not published by [src]; returns the clauses
   oldest-first together with the new cursor.  Entries published while
   we scan are picked up by the next drain. *)
let drain t ~src ~cursor =
  if Race.Mutations.on "shared-plain-slot" then
    ignore (Race.Cell.get (slot_shadow t));
  let head = RS.get t.head in
  let start = max cursor (head - size t) in
  let acc = ref [] in
  for i = start to head - 1 do
    match RS.get t.slots.(i land t.mask) with
    | Some e when e.seq = i && e.src <> src -> acc := (e.lits, e.lbd) :: !acc
    | Some _ | None -> ()
  done;
  (List.rev !acc, head)
