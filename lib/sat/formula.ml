(* Boolean formula AST with a Tseitin-style transformation to CNF.

   Hand-rolled clauses cover most of the QMR encoding, but the backtracking
   step of the local relaxation (blocking a previously returned mapping) and
   several tests are most naturally expressed as formulas. *)

type t =
  | True
  | False
  | Atom of Lit.t
  | Not of t
  | And of t list
  | Or of t list
  | Imp of t * t
  | Iff of t * t

let atom ?(sign = true) v = Atom (Lit.of_var ~sign v)

let rec eval assignment f =
  match f with
  | True -> true
  | False -> false
  | Atom l ->
    let b = assignment (Lit.var l) in
    if Lit.sign l then b else not b
  | Not g -> not (eval assignment g)
  | And gs -> List.for_all (eval assignment) gs
  | Or gs -> List.exists (eval assignment) gs
  | Imp (a, b) -> (not (eval assignment a)) || eval assignment b
  | Iff (a, b) -> eval assignment a = eval assignment b

(* Negation normal form push, eliminating Imp/Iff and Not. *)
let rec nnf pos f =
  match (f, pos) with
  | True, true | False, false -> True
  | True, false | False, true -> False
  | Atom l, true -> Atom l
  | Atom l, false -> Atom (Lit.neg l)
  | Not g, _ -> nnf (not pos) g
  | And gs, true -> And (List.map (nnf true) gs)
  | And gs, false -> Or (List.map (nnf false) gs)
  | Or gs, true -> Or (List.map (nnf true) gs)
  | Or gs, false -> And (List.map (nnf false) gs)
  | Imp (a, b), _ -> nnf pos (Or [ Not a; b ])
  | Iff (a, b), _ -> nnf pos (And [ Imp (a, b); Imp (b, a) ])

(* Clause insertion used by the clausifier: duplicate literals are dropped
   and tautologies discarded.  Tseitin over syntactically overlapping
   subformulas is where both arise naturally (e.g. [Or [a; a]] or
   [Or [a; Not a]]), and emitting them as-is would pollute the solver's
   clause database and the lint engine's duplicate detection. *)
let add_clause (sink : Sink.t) lits =
  match Sink.normalize lits with
  | None -> ()
  | Some c -> sink.add_clause c

(* Tseitin: return a literal equivalent (in the one-directional, polarity-
   sufficient sense) to the NNF formula, introducing definitions. *)
let rec to_lit (sink : Sink.t) f =
  match f with
  | True ->
    let v = Lit.of_var (sink.fresh_var ()) in
    add_clause sink [ v ];
    v
  | False ->
    let v = Lit.of_var (sink.fresh_var ()) in
    add_clause sink [ Lit.neg v ];
    v
  | Atom l -> l
  | And gs ->
    let ls = List.map (to_lit sink) gs in
    let d = Lit.of_var (sink.fresh_var ()) in
    (* d -> each conjunct, and conjuncts -> d *)
    List.iter (fun l -> add_clause sink [ Lit.neg d; l ]) ls;
    add_clause sink (d :: List.map Lit.neg ls);
    d
  | Or gs ->
    let ls = List.map (to_lit sink) gs in
    let d = Lit.of_var (sink.fresh_var ()) in
    add_clause sink (Lit.neg d :: ls);
    List.iter (fun l -> add_clause sink [ d; Lit.neg l ]) ls;
    d
  | Not _ | Imp _ | Iff _ -> to_lit sink (nnf true f)

(* Assert a formula: clausify directly when the shape is already clausal to
   avoid auxiliary variables for the common cases. *)
let rec assert_in (sink : Sink.t) f =
  match nnf true f with
  | True -> ()
  | False -> add_clause sink []
  | Atom l -> add_clause sink [ l ]
  | And gs -> List.iter (assert_in sink) gs
  | Or gs ->
    (* Flatten a disjunction into one clause when all disjuncts are
       literals; otherwise introduce definitions for the complex ones. *)
    let clause =
      List.map
        (fun g ->
          match g with
          | Atom l -> l
          | other -> to_lit sink other)
        gs
    in
    add_clause sink clause
  | (Not _ | Imp _ | Iff _) as g ->
    (* nnf eliminates these constructors. *)
    add_clause sink [ to_lit sink g ]
