(* A clause sink abstracts over "where CNF goes": a live solver (for
   incremental solving) or a builder (for counting and DIMACS emission).
   Encoding code (cardinality constraints, Tseitin, the QMR encoding)
   targets sinks so it can serve both without duplication. *)

type t = {
  fresh_var : unit -> Lit.var;
  add_clause : Lit.t list -> unit;
}

let of_solver solver =
  {
    fresh_var = (fun () -> Solver.new_var solver);
    add_clause = Solver.add_clause solver;
  }

type builder = {
  mutable next_var : int;
  clauses : Lit.t list Vec.t;
}

let builder () = { next_var = 0; clauses = Vec.create ~dummy:[] }

let of_builder b =
  {
    fresh_var =
      (fun () ->
        let v = b.next_var in
        b.next_var <- v + 1;
        v);
    add_clause = (fun c -> Vec.push b.clauses c);
  }

let builder_clauses b = Vec.to_list b.clauses

let builder_n_vars b = b.next_var

let builder_n_clauses b = Vec.size b.clauses

(* ------------------------------------------------------------------ *)
(* Insertion-time clause hygiene.

   Generators occasionally produce clauses with repeated literals (e.g. a
   Tseitin disjunction over syntactically equal subformulas) or outright
   tautologies.  Both are semantically harmless but inflate the clause
   count, defeat duplicate detection downstream, and — for tautologies —
   waste watch-list slots forever.  [normalize] canonicalises a clause;
   [sanitizing] wraps a sink so every insertion is normalized, with the
   deltas recorded for lint reports. *)

let normalize lits =
  (* Sorting by the packed representation puts the two literals of a
     variable next to each other, so duplicate *variables* are adjacent. *)
  let sorted = List.sort_uniq Lit.compare lits in
  let rec tautological = function
    | a :: (b :: _ as rest) ->
      Lit.var a = Lit.var b || tautological rest
    | [] | [ _ ] -> false
  in
  if tautological sorted then None else Some sorted

type sanitize_stats = {
  mutable clauses_seen : int;
  mutable tautologies_dropped : int;
  mutable duplicate_literals_dropped : int;
}

let sanitize_stats () =
  { clauses_seen = 0; tautologies_dropped = 0; duplicate_literals_dropped = 0 }

let sanitizing ?stats sink =
  let record f = match stats with None -> () | Some s -> f s in
  {
    sink with
    add_clause =
      (fun c ->
        record (fun s -> s.clauses_seen <- s.clauses_seen + 1);
        match normalize c with
        | None ->
          record (fun s ->
              s.tautologies_dropped <- s.tautologies_dropped + 1)
        | Some c' ->
          let dropped = List.length c - List.length c' in
          if dropped > 0 then
            record (fun s ->
                s.duplicate_literals_dropped <-
                  s.duplicate_literals_dropped + dropped);
          sink.add_clause c');
  }

(* A sink that duplicates everything into two sinks with the same variable
   numbering (e.g. a solver and a builder used for DIMACS export). *)
let tee a b =
  {
    fresh_var =
      (fun () ->
        let v = a.fresh_var () in
        let v' = b.fresh_var () in
        if v <> v' then invalid_arg "Sink.tee: variable numbering diverged";
        v);
    add_clause =
      (fun c ->
        a.add_clause c;
        b.add_clause c);
  }
