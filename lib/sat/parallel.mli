(** Parallel CDCL portfolio with lock-free clause sharing
    (Glucose-syrup style).

    [N] diversified solver members (varied phase polarity, restart
    aggressiveness and learnt-database tightness) attack the same
    instance; low-LBD learnt clauses are exchanged through a lossy
    lock-free ring ({!Shared}), and the first member to reach a decisive
    verdict cooperatively cancels the rest.

    All members hold identical problem clauses, so shared clauses —
    including clauses learnt under assumptions, which carry those
    assumptions negated — are consequences of the common formula and
    sound to import anywhere.  Members never carry proof sinks; certify
    mode must use a sequential {!Solver} instead.

    With [jobs = 1] no ring, hooks or cancellation flag are installed:
    every call forwards to the single member, bit-identical to a bare
    {!Solver}. *)

type t

val create : ?jobs:int -> ?glue_limit:int -> ?ring_size:int -> unit -> t
(** [jobs] members (default 1).  [glue_limit] (default 4) is the maximal
    LBD a learnt clause may have to be shared; [ring_size] is the
    exchange-ring capacity (see {!Shared.create}). *)

val jobs : t -> int

val new_var : t -> Lit.var
(** Allocate the same fresh variable in every member. *)

val n_vars : t -> int

val add_clause : t -> Lit.t list -> unit
(** Add a problem clause to every member.  Like {!Solver.add_clause},
    only legal between solve calls. *)

val set_polarity : t -> Lit.var -> bool -> unit
(** Set the initial phase of a variable in every member (overriding the
    portfolio's diversified seed phases — use for semantic hints such as
    soft-clause biasing). *)

val solve : ?assumptions:Lit.t list -> ?deadline:float -> t -> Solver.result
(** Portfolio solve: every member searches the same
    instance-plus-assumptions; the first decisive verdict wins and
    cancels the rest.  [Unknown] only when no member was decisive. *)

val solve_with_core :
  ?assumptions:Lit.t list -> ?deadline:float -> t -> Solver.result * Lit.t list
(** Like {!solve}; on [Unsat] under assumptions additionally returns the
    winning member's unsatisfiable core. *)

val solve_cubes :
  ?assumptions:Lit.t list ->
  ?deadline:float ->
  t ->
  cubes:Lit.t list list ->
  Solver.result * Lit.t list
(** Cube-and-conquer execution: the cubes are drained from a shared
    counter by all members, each solved under [assumptions @ cube].  Any
    [Sat] cube decides the whole call; if every cube is refuted the
    result is [Unsat] with the union of the per-cube cores restricted to
    [assumptions] — which is a valid core {e provided the cube set is
    exhaustive} (every assignment of the branch variables extends some
    cube), as produced by {!Cube}.  An empty cube list degrades to
    {!solve_with_core}. *)

val probe : t -> Lit.t -> int option
(** {!Solver.probe_literal} on the reference member (member 0). *)

val model_value : t -> Lit.var -> bool
(** Model value from the winning member; only meaningful right after a
    [Sat] result. *)

val value_lit : t -> Lit.t -> int
(** Level-0 assignment view of the reference member. *)

val ok : t -> bool

val stats : t -> Solver.stats
(** Live stats of the winning member (member 0 before any solve). *)

val winner : t -> int
(** Index of the member that decided the most recent solve (0 when the
    result was [Unknown]). *)

val wins : t -> int array
(** Per-member decisive-result counts since [create]. *)

val shared_clauses : t -> int
(** Clauses published into the exchange ring since [create]. *)

val imported_clauses : t -> int
(** Clauses imported from the ring, summed over members. *)
