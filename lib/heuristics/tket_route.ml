(* A tket-style greedy router (Cowtan et al., "On the qubit routing
   problem").

   Placement: a greedy subgraph-ish initial map — logical qubits in
   decreasing interaction-degree order are placed on physical qubits so
   that already-placed interaction partners are as close as possible,
   starting from the highest-degree physical qubit.

   Routing: per topological timestep, while some gate in the current
   frontier is non-local, score candidate swaps by the total distance
   change over the frontier and a decaying lookahead window of future
   timesteps, and apply the best; distance-increasing swaps are rejected
   unless no swap helps (tie-broken deterministically). *)

type config = {
  lookahead : int;  (** timesteps of lookahead *)
  lookahead_decay : float;
  seed : int;
}

let default_config = { lookahead = 4; lookahead_decay = 0.5; seed = 1 }

(* Interaction graph statistics for placement. *)
let interaction_degrees circuit =
  let n = Quantum.Circuit.n_qubits circuit in
  let deg = Array.make n 0 in
  let partners = Array.make n [] in
  List.iter
    (fun (_, q, q') ->
      deg.(q) <- deg.(q) + 1;
      deg.(q') <- deg.(q') + 1;
      if not (List.mem q' partners.(q)) then partners.(q) <- q' :: partners.(q);
      if not (List.mem q partners.(q')) then partners.(q') <- q :: partners.(q'))
    (Quantum.Circuit.two_qubit_gates circuit);
  (deg, partners)

let initial_placement ~device circuit =
  let n_log = Quantum.Circuit.n_qubits circuit in
  let n_phys = Arch.Device.n_qubits device in
  let deg, partners = interaction_degrees circuit in
  let order =
    List.sort
      (fun a b -> compare (deg.(b), a) (deg.(a), b))
      (List.init n_log Fun.id)
  in
  let log_to_phys = Array.make n_log (-1) in
  let taken = Array.make n_phys false in
  let place q =
    let placed_partners =
      List.filter (fun q' -> log_to_phys.(q') >= 0) partners.(q)
    in
    let candidates = List.init n_phys Fun.id in
    (* Primary: total distance to already-placed partners (or centrality
       when none are placed).  Tie-break: keep as many free neighbours as
       possible so later qubits are not boxed in. *)
    let free_degree p =
      List.length
        (List.filter (fun p' -> not taken.(p')) (Arch.Device.neighbors device p))
    in
    let score p =
      if taken.(p) then (max_int, 0)
      else if placed_partners = [] then
        (-Arch.Device.degree device p, -free_degree p)
      else
        ( List.fold_left
            (fun acc q' -> acc + Arch.Device.distance device p log_to_phys.(q'))
            0 placed_partners,
          -free_degree p )
    in
    let best =
      List.fold_left
        (fun (bp, bs) p ->
          let s = score p in
          if s < bs then (p, s) else (bp, bs))
        (-1, (max_int, 0))
        candidates
    in
    match best with
    | -1, _ -> failwith "Tket_route: no free physical qubit"
    | p, _ ->
      log_to_phys.(q) <- p;
      taken.(p) <- true
  in
  List.iter place order;
  log_to_phys

let route ?(config = default_config) ?initial device circuit =
  if Quantum.Circuit.n_qubits circuit > Arch.Device.n_qubits device then
    invalid_arg "Tket_route.route: circuit does not fit on the device";
  let n_phys = Arch.Device.n_qubits device in
  let dag = Quantum.Dag.build circuit in
  let layers =
    List.map
      (fun l -> List.map (Quantum.Dag.node dag) l)
      (Quantum.Dag.layers dag)
  in
  let initial =
    match initial with
    | Some a ->
      if Array.length a <> Quantum.Circuit.n_qubits circuit then
        invalid_arg "Tket_route.route: initial placement has wrong length";
      Array.copy a
    | None -> initial_placement ~device circuit
  in
  let log_to_phys = Array.copy initial in
  let phys_to_log = Array.make n_phys (-1) in
  Array.iteri (fun q p -> phys_to_log.(p) <- q) log_to_phys;
  (* Events in the same shape as SABRE's so we can reuse its emitter. *)
  let events = ref [] in
  let apply_swap (a, b) =
    let qa = phys_to_log.(a) and qb = phys_to_log.(b) in
    phys_to_log.(a) <- qb;
    phys_to_log.(b) <- qa;
    if qa >= 0 then log_to_phys.(qa) <- b;
    if qb >= 0 then log_to_phys.(qb) <- a;
    events := Sabre.Swp (a, b) :: !events
  in
  let dist q q' =
    Arch.Device.distance device log_to_phys.(q) log_to_phys.(q')
  in
  let rec process remaining_layers =
    match remaining_layers with
    | [] -> ()
    | layer :: rest ->
      let pending = ref layer in
      let guard = ref 0 in
      let rec step () =
        (* Execute whatever is local. *)
        let local, nonlocal =
          List.partition
            (fun (n : Quantum.Dag.node) -> dist n.q1 n.q2 = 1)
            !pending
        in
        List.iter
          (fun (n : Quantum.Dag.node) -> events := Sabre.Exec n.id :: !events)
          local;
        pending := nonlocal;
        if nonlocal <> [] then begin
          incr guard;
          if !guard > 50 * n_phys * List.length layer then
            failwith "Tket_route: routing did not converge";
          (* Candidate swaps: edges touching a pending qubit. *)
          let relevant = Array.make n_phys false in
          List.iter
            (fun (n : Quantum.Dag.node) ->
              relevant.(log_to_phys.(n.q1)) <- true;
              relevant.(log_to_phys.(n.q2)) <- true)
            nonlocal;
          let candidates =
            List.filter
              (fun (a, b) -> relevant.(a) || relevant.(b))
              (Arch.Device.edges device)
          in
          let score edge =
            let moved q =
              let p = log_to_phys.(q) in
              let a, b = edge in
              if p = a then b else if p = b then a else p
            in
            let layer_cost nodes =
              List.fold_left
                (fun acc (n : Quantum.Dag.node) ->
                  acc
                  + Arch.Device.distance device (moved n.q1) (moved n.q2))
                0 nodes
            in
            let future =
              let rec take k ls =
                match (k, ls) with
                | 0, _ | _, [] -> []
                | k, l :: rest -> l :: take (k - 1) rest
              in
              take config.lookahead rest
            in
            let base = float_of_int (layer_cost nonlocal) in
            let _, future_cost =
              List.fold_left
                (fun (w, acc) l ->
                  ( w *. config.lookahead_decay,
                    acc +. (w *. float_of_int (layer_cost l)) ))
                (config.lookahead_decay, 0.0)
                future
            in
            base +. future_cost
          in
          match candidates with
          | [] -> failwith "Tket_route: no candidate swaps"
          | first :: others ->
            let best, _ =
              List.fold_left
                (fun (be, bs) e ->
                  let s = score e in
                  if s < bs then (e, s) else (be, bs))
                (first, score first)
                others
            in
            apply_swap best;
            step ()
        end
      in
      step ();
      process rest
  in
  process layers;
  let physical, final =
    Sabre.emit ~device ~circuit ~initial (List.rev !events)
  in
  Satmap.Routed.create ~device
    ~initial:(Satmap.Mapping.of_array ~n_phys initial)
    ~final:(Satmap.Mapping.of_array ~n_phys final)
    ~circuit:physical
