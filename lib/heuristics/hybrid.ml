(* Hybrid mapping: optimal constraint-based *initial mapping* plus
   heuristic *routing*.

   This realises the scaling avenue the paper sketches in its Discussion
   section: "we can only solve the mapping constraints (optimally) and
   leave the routing process for a heuristic approach".  A single-layer
   MaxSAT instance chooses the initial map that maximises the number of
   gate executions already satisfied by adjacency (weighted by how often
   each qubit pair interacts); SABRE then routes from that fixed map.

   Compared to full SATMAP this drops the per-gate time dimension, so the
   instance has O(|Logic| * |Phys|) variables regardless of circuit
   length — it scales to circuits far beyond the monolithic encoding. *)

type config = {
  timeout : float;
  sabre : Sabre.config;
  verify : bool;
}

let default_config =
  { timeout = 10.0; sabre = Sabre.default_config; verify = true }

(* Interaction multiset: distinct unordered pairs with multiplicities. *)
let interaction_pairs circuit =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (_, q, q') ->
      let key = if q < q' then (q, q') else (q', q) in
      Hashtbl.replace table key (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
    (Quantum.Circuit.two_qubit_gates circuit);
  Hashtbl.fold (fun pair count acc -> (pair, count) :: acc) table []

(* Build the single-layer mapping instance.  Variables: map(q,p) = q*P+p,
   then one "satisfied" indicator per interacting pair, then encoding
   auxiliaries. *)
let build_instance ~device circuit =
  let n_log = Quantum.Circuit.n_qubits circuit in
  let n_phys = Arch.Device.n_qubits device in
  let pairs = interaction_pairs circuit in
  let n_pairs = List.length pairs in
  let map_var ~q ~p = (q * n_phys) + p in
  let pair_var i = (n_log * n_phys) + i in
  let hard = Sat.Vec.create ~dummy:[] in
  let next_aux = ref (n_log * n_phys + n_pairs) in
  let sink =
    Sat.Sink.
      {
        fresh_var =
          (fun () ->
            let v = !next_aux in
            incr next_aux;
            v);
        add_clause = (fun c -> Sat.Vec.push hard c);
      }
  in
  let pos v = Sat.Lit.of_var v in
  let neg v = Sat.Lit.of_var ~sign:false v in
  for q = 0 to n_log - 1 do
    Sat.Card.exactly_one sink (List.init n_phys (fun p -> pos (map_var ~q ~p)))
  done;
  for p = 0 to n_phys - 1 do
    if n_log > 1 then
      Sat.Card.at_most_one sink (List.init n_log (fun q -> pos (map_var ~q ~p)))
  done;
  (* satisfied(i) -> the pair's qubits are adjacent under the map *)
  let soft =
    List.mapi
      (fun i ((q, q'), count) ->
        let g = pair_var i in
        for p = 0 to n_phys - 1 do
          sink.add_clause
            (neg g
            :: neg (map_var ~q ~p)
            :: List.map
                 (fun p' -> pos (map_var ~q:q' ~p:p'))
                 (Arch.Device.neighbors device p))
        done;
        (count, [ pos g ]))
      pairs
  in
  ( Maxsat.Instance.create ~n_vars:!next_aux
      ~hard:(Sat.Vec.to_list hard)
      ~soft,
    map_var )

(* Decode the chosen initial map from a model. *)
let decode_map ~n_log ~n_phys map_var model =
  Array.init n_log (fun q ->
      let rec find p =
        if p >= n_phys then failwith "Hybrid: unmapped qubit"
        else if model.(map_var ~q ~p) then p
        else find (p + 1)
      in
      find 0)

let route ?(config = default_config) device circuit =
  if Quantum.Circuit.n_qubits circuit > Arch.Device.n_qubits device then
    invalid_arg "Hybrid.route: circuit does not fit on the device";
  let n_log = Quantum.Circuit.n_qubits circuit in
  let n_phys = Arch.Device.n_qubits device in
  if Quantum.Circuit.count_two_qubit circuit = 0 then
    Sabre.route_from ~config:config.sabre
      ~initial:(Array.init n_log Fun.id)
      device circuit
  else begin
    let instance, map_var = build_instance ~device circuit in
    let deadline = Unix.gettimeofday () +. config.timeout in
    let initial =
      match Maxsat.Optimizer.solve ~deadline instance with
      | Maxsat.Optimizer.Optimal o | Maxsat.Optimizer.Feasible o ->
        decode_map ~n_log ~n_phys map_var o.model
      | Maxsat.Optimizer.Unsatisfiable _ | Maxsat.Optimizer.Timeout ->
        (* Injectivity alone is always satisfiable, so only an expired
           deadline lands here: fall back to a heuristic placement. *)
        Tket_route.initial_placement ~device circuit
    in
    let routed = Sabre.route_from ~config:config.sabre ~initial device circuit in
    if config.verify then Satmap.Verifier.check_exn ~original:circuit routed;
    routed
  end
