(** A tket-style greedy router (Cowtan et al.): interaction-aware greedy
    placement plus per-timestep swap selection with decayed lookahead. *)

type config = {
  lookahead : int;
  lookahead_decay : float;
  seed : int;
}

val default_config : config

val initial_placement : device:Arch.Device.t -> Quantum.Circuit.t -> int array

val route :
  ?config:config ->
  ?initial:int array ->
  Arch.Device.t ->
  Quantum.Circuit.t ->
  Satmap.Routed.t
(** [initial] seeds the placement (log -> phys, injective, one entry per
    logical qubit) instead of the built-in greedy placement. *)
