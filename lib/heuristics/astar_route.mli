(** An MQT-style A* router: per-topological-layer optimal swap search with
    an admissible distance heuristic, node-bounded with a greedy
    fallback. *)

type config = {
  node_budget : int;
  seed : int;
}

val default_config : config

val route :
  ?config:config ->
  ?initial:int array ->
  Arch.Device.t ->
  Quantum.Circuit.t ->
  Satmap.Routed.t
(** [initial] seeds the placement (log -> phys, injective, one entry per
    logical qubit) instead of the default interaction-aware greedy. *)
