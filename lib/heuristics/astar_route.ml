(* An MQT-style A* router (Zulehner, Paler, Wille — "An efficient
   methodology for mapping quantum circuits to the IBM QX architectures").

   The circuit is processed by topological layers of two-qubit gates
   (disjoint qubit pairs).  For each layer, an A* search over mappings
   finds a minimal sequence of swaps making *every* gate of the layer
   executable; the admissible heuristic is half the total excess distance
   (one swap improves the sum of gate distances by at most 2).  The search
   is node-bounded; on exhaustion a greedy fallback walks the first
   non-local gate's qubits together along a shortest path, guaranteeing
   progress. *)

type config = {
  node_budget : int;  (** per-layer A* node expansion budget *)
  seed : int;
}

let default_config = { node_budget = 20000; seed = 1 }

type search_node = {
  log_to_phys : int array;
  swaps : (int * int) list;  (** reversed *)
  g : int;
}


let layer_done ~device log_to_phys layer =
  List.for_all
    (fun (n : Quantum.Dag.node) ->
      Arch.Device.distance device log_to_phys.(n.q1) log_to_phys.(n.q2) = 1)
    layer

let heuristic ~device log_to_phys layer =
  let excess =
    List.fold_left
      (fun acc (n : Quantum.Dag.node) ->
        acc
        + (Arch.Device.distance device log_to_phys.(n.q1) log_to_phys.(n.q2)
          - 1))
      0 layer
  in
  (excess + 1) / 2

let key arr = String.concat "," (List.map string_of_int (Array.to_list arr))

let apply_swap_arr log_to_phys (a, b) =
  let arr = Array.copy log_to_phys in
  Array.iteri
    (fun q p -> if p = a then arr.(q) <- b else if p = b then arr.(q) <- a)
    log_to_phys;
  arr

(* Swaps that move a qubit of some layer gate. *)
let candidate_edges ~device log_to_phys layer =
  let n_phys = Arch.Device.n_qubits device in
  let relevant = Array.make n_phys false in
  List.iter
    (fun (n : Quantum.Dag.node) ->
      relevant.(log_to_phys.(n.q1)) <- true;
      relevant.(log_to_phys.(n.q2)) <- true)
    layer;
  List.filter (fun (a, b) -> relevant.(a) || relevant.(b)) (Arch.Device.edges device)

module Pq = Map.Make (Int)

let astar_layer ~config ~device ~log_to_phys layer =
  if layer_done ~device log_to_phys layer then Some []
  else begin
    let open_set = ref Pq.empty in
    let push node =
      let f = node.g + heuristic ~device node.log_to_phys layer in
      open_set := Pq.update f (fun l -> Some (node :: Option.value l ~default:[])) !open_set
    in
    let pop () =
      match Pq.min_binding_opt !open_set with
      | None -> None
      | Some (f, nodes) -> (
        match nodes with
        | [] ->
          open_set := Pq.remove f !open_set;
          None
        | n :: rest ->
          open_set :=
            (if rest = [] then Pq.remove f !open_set
             else Pq.add f rest !open_set);
          Some n)
    in
    let best_g = Hashtbl.create 1024 in
    push { log_to_phys = Array.copy log_to_phys; swaps = []; g = 0 };
    let expanded = ref 0 in
    let result = ref None in
    let continue = ref true in
    while !continue do
      match pop () with
      | None -> continue := false
      | Some node ->
        if layer_done ~device node.log_to_phys layer then begin
          result := Some (List.rev node.swaps);
          continue := false
        end
        else begin
          incr expanded;
          if !expanded > config.node_budget then continue := false
          else begin
            List.iter
              (fun edge ->
                let arr = apply_swap_arr node.log_to_phys edge in
                let k = key arr in
                let g = node.g + 1 in
                match Hashtbl.find_opt best_g k with
                | Some g' when g' <= g -> ()
                | _ ->
                  Hashtbl.replace best_g k g;
                  push { log_to_phys = arr; swaps = edge :: node.swaps; g })
              (candidate_edges ~device node.log_to_phys layer)
          end
        end
    done;
    !result
  end

(* Greedy fallback: walk the first non-local gate's control towards its
   target along a shortest path (one swap), guaranteeing progress. *)
let greedy_step ~device log_to_phys layer =
  let nonlocal =
    List.find
      (fun (n : Quantum.Dag.node) ->
        Arch.Device.distance device log_to_phys.(n.q1) log_to_phys.(n.q2) > 1)
      layer
  in
  let src = log_to_phys.(nonlocal.q1) and dst = log_to_phys.(nonlocal.q2) in
  let next =
    List.find
      (fun p ->
        Arch.Device.distance device p dst
        = Arch.Device.distance device src dst - 1)
      (Arch.Device.neighbors device src)
  in
  (src, next)

let route ?(config = default_config) ?initial device circuit =
  if Quantum.Circuit.n_qubits circuit > Arch.Device.n_qubits device then
    invalid_arg "Astar_route.route: circuit does not fit on the device";
  let n_phys = Arch.Device.n_qubits device in
  let dag = Quantum.Dag.build circuit in
  let layers =
    List.map (fun l -> List.map (Quantum.Dag.node dag) l) (Quantum.Dag.layers dag)
  in
  (* Initial placement: a caller-supplied seed (e.g. QAP), else the same
     interaction-aware greedy as the tket baseline (MQTH's own placement
     is similar in spirit). *)
  let initial =
    match initial with
    | Some a ->
      if Array.length a <> Quantum.Circuit.n_qubits circuit then
        invalid_arg "Astar_route.route: initial placement has wrong length";
      Array.copy a
    | None -> Tket_route.initial_placement ~device circuit
  in
  let log_to_phys = Array.copy initial in
  let events = ref [] in
  let do_swap edge =
    events := Sabre.Swp edge :: !events;
    let a, b = edge in
    Array.iteri
      (fun q p ->
        if p = a then log_to_phys.(q) <- b
        else if p = b then log_to_phys.(q) <- a)
      (Array.copy log_to_phys)
  in
  List.iter
    (fun layer ->
      let guard = ref 0 in
      while not (layer_done ~device log_to_phys layer) do
        incr guard;
        if !guard > 100 * n_phys then
          failwith "Astar_route: no progress on layer";
        match astar_layer ~config ~device ~log_to_phys layer with
        | Some swaps when swaps <> [] -> List.iter do_swap swaps
        | Some _ -> () (* already done *)
        | None -> do_swap (greedy_step ~device log_to_phys layer)
      done;
      List.iter
        (fun (n : Quantum.Dag.node) -> events := Sabre.Exec n.id :: !events)
        layer)
    layers;
  let physical, final = Sabre.emit ~device ~circuit ~initial (List.rev !events) in
  Satmap.Routed.create ~device
    ~initial:(Satmap.Mapping.of_array ~n_phys initial)
    ~final:(Satmap.Mapping.of_array ~n_phys final)
    ~circuit:physical
