(* Cross-engine differential harness: run k engines on one instance,
   verify every output independently, and hold the MaxSAT optimum as a
   lower bound over every order-preserving heuristic.

   Soundness of the bound: the MaxSAT router minimises swap count for
   the circuit's program order, so when it *proves* its optimum
   ([m_optimal]), no router that replays that exact total order can use
   fewer swaps.  Two relaxations legitimately escape the bound and are
   exempt:

   - Engines advertising [reorders_commuting] (swap_strategy) may
     execute commuting gates in any order.
   - Front-layer heuristics (sabre, tket, astar, qap) schedule any gate
     whose per-qubit predecessors are done, so two gates on disjoint
     qubits may execute in either order.  That is dependency-sound (the
     verifier's per-qubit queues accept it) but optimises over a
     strictly larger space than the total-order encoding; on instances
     where the source order binds, a verified routing below the
     "optimum" exists.  We detect this case by replaying the routed
     circuit through the SWAP trajectory: a win is only a violation if
     the translated gate sequence equals the source order exactly.

   An unproved MaxSAT cost (sliced run, deadline) bounds nothing and
   asserts nothing. *)

type row = {
  r_engine : string;
  r_result : (Satmap.Routed.t * Registry.meta, string) result;
}

type report = {
  rows : row list;
  violations : string list;
      (** verifier rejections and lower-bound violations; empty on a
          clean run *)
}

let row_cost row =
  match row.r_result with
  | Ok (routed, _) -> Some (Satmap.Routed.n_swaps routed)
  | Error _ -> None

(* Does the routed circuit replay the original gates in exactly the
   source text's total order?  Walk the physical gates, tracking the
   phys -> log assignment through SWAPs, and translate every other gate
   back to logical indices; order is preserved iff the translated
   sequence equals the original gate list.  Anything that fails to
   line up (interleaved disjoint gates, commuting reorders, SWAPs in
   the source circuit) conservatively counts as reordered, which only
   ever widens the exemption, never invents a violation. *)
let preserves_program_order ~original routed =
  let inv = Array.copy (Satmap.Mapping.phys_to_log (Satmap.Routed.initial routed)) in
  let translated =
    List.filter_map
      (fun gate ->
        match gate with
        | Quantum.Gate.Two { kind = Quantum.Gate.Swap; control; target } ->
          let t = inv.(control) in
          inv.(control) <- inv.(target);
          inv.(target) <- t;
          None
        | Quantum.Gate.Barrier _ -> None
        | g -> Some (Quantum.Gate.relabel (fun p -> inv.(p)) g))
      (Quantum.Circuit.gates (Satmap.Routed.circuit routed))
  in
  let originals =
    List.filter
      (fun g -> match g with Quantum.Gate.Barrier _ -> false | _ -> true)
      (Quantum.Circuit.gates original)
  in
  List.length translated = List.length originals
  && List.for_all2 Quantum.Gate.equal translated originals

let run ?(engines = Catalog.names ()) ?(config = Registry.default_config)
    device circuit =
  (* Verification is the point of the harness; seeding would turn the
     maxsat row into a seeded (non-global) optimum, so strip both. *)
  let config = { config with Registry.verify = true; initial = None } in
  let rows =
    List.map
      (fun name ->
        { r_engine = name; r_result = Catalog.route ~engine:name device circuit config })
      engines
  in
  let violations = ref [] in
  List.iter
    (fun row ->
      match row.r_result with
      | Error msg when String.length msg > 0 ->
        (* verifier rejections arrive as errors; collect only those *)
        let is_verifier =
          (* Registry.run prefixes verifier rejections distinctly *)
          let marker = "verifier rejected output" in
          let rec contains i =
            i + String.length marker <= String.length msg
            && (String.sub msg i (String.length marker) = marker
               || contains (i + 1))
          in
          contains 0
        in
        if is_verifier then violations := msg :: !violations
      | _ -> ())
    rows;
  (match
     List.find_opt
       (fun r ->
         r.r_engine = "maxsat"
         && match r.r_result with Ok (_, m) -> m.Registry.m_optimal | _ -> false)
       rows
   with
  | None -> ()
  | Some opt_row ->
    let optimum = Option.get (row_cost opt_row) in
    List.iter
      (fun row ->
        if row.r_engine <> "maxsat" then
          match (Catalog.find row.r_engine, row.r_result) with
          | Some e, Ok (routed, _)
            when (not e.Registry.caps.Registry.reorders_commuting)
                 && Satmap.Routed.n_swaps routed < optimum
                 && preserves_program_order ~original:circuit routed ->
            (* A cheaper routing that replays the exact source order
               contradicts the optimality proof — a routing bug, not a
               relaxation win. *)
            violations :=
              Printf.sprintf
                "%s used %d swaps in program order, beating the proved \
                 MaxSAT optimum of %d"
                row.r_engine
                (Satmap.Routed.n_swaps routed)
                optimum
              :: !violations
          | _ -> ())
      rows);
  { rows; violations = List.rev !violations }

let pp_report fmt report =
  List.iter
    (fun row ->
      match row.r_result with
      | Ok (routed, m) ->
        Format.fprintf fmt "%-14s %3d swaps  depth %3d  %6.3fs%s@."
          row.r_engine
          (Satmap.Routed.n_swaps routed)
          (Satmap.Routed.depth routed)
          m.Registry.m_time
          (if m.Registry.m_optimal then "  (optimal)" else "")
      | Error msg -> Format.fprintf fmt "%-14s failed: %s@." row.r_engine msg)
    report.rows;
  List.iter (fun v -> Format.fprintf fmt "VIOLATION: %s@." v) report.violations
