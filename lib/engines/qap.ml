(* Quadratic-assignment placement with tabu-search improvement (the 2QAN
   recipe).  The objective is the classic QAP form

     cost(sol) = sum over logical pairs (q, q')  flow(q, q') * dist(sol q, sol q')

   where flow counts two-qubit interactions and dist is device shortest
   path.  A greedy construction (highest-flow qubits first, each placed
   where it is closest to its already-placed partners) is improved by
   tabu search over pair swaps and relocations to free physical qubits,
   with an aspiration criterion on the incumbent best.

   The result is a placement, not a routing: it is used standalone in
   front of SABRE (the [qap] engine) or as an initial-mapping seed for
   any engine with [accepts_seed] (satmap's [initial_map], SABRE's
   [route_from], A*'s and tket's [?initial]). *)

let flow_matrix circuit =
  let n = Quantum.Circuit.n_qubits circuit in
  let flow = Array.make_matrix n n 0 in
  List.iter
    (fun (_, q, q') ->
      flow.(q).(q') <- flow.(q).(q') + 1;
      flow.(q').(q) <- flow.(q').(q) + 1)
    (Quantum.Circuit.two_qubit_gates circuit);
  flow

let cost ~device ~flow sol =
  let n = Array.length sol in
  let total = ref 0 in
  for q = 0 to n - 1 do
    for q' = q + 1 to n - 1 do
      if flow.(q).(q') > 0 then
        total :=
          !total + (flow.(q).(q') * Arch.Device.distance device sol.(q) sol.(q'))
    done
  done;
  !total

(* Cost change from assigning [q] to position [p] instead of [sol.(q)],
   everything else fixed. *)
let move_delta ~device ~flow sol q p =
  let n = Array.length sol in
  let d = ref 0 in
  for q' = 0 to n - 1 do
    if q' <> q && flow.(q).(q') > 0 then
      d :=
        !d
        + flow.(q).(q')
          * (Arch.Device.distance device p sol.(q')
            - Arch.Device.distance device sol.(q) sol.(q'))
  done;
  !d

let swap_delta ~device ~flow sol i j =
  let pi = sol.(i) and pj = sol.(j) in
  let n = Array.length sol in
  let d = ref 0 in
  for q = 0 to n - 1 do
    if q <> i && q <> j then begin
      if flow.(i).(q) > 0 then
        d :=
          !d
          + flow.(i).(q)
            * (Arch.Device.distance device pj sol.(q)
              - Arch.Device.distance device pi sol.(q));
      if flow.(j).(q) > 0 then
        d :=
          !d
          + flow.(j).(q)
            * (Arch.Device.distance device pi sol.(q)
              - Arch.Device.distance device pj sol.(q))
    end
  done;
  (* the (i, j) term itself is symmetric under the swap *)
  !d

let greedy device flow =
  let n_log = Array.length flow in
  let n_phys = Arch.Device.n_qubits device in
  let total_flow q = Array.fold_left ( + ) 0 flow.(q) in
  let order =
    List.sort
      (fun a b -> compare (total_flow b, a) (total_flow a, b))
      (List.init n_log Fun.id)
  in
  let sol = Array.make n_log (-1) in
  let taken = Array.make n_phys false in
  List.iter
    (fun q ->
      let score p =
        if taken.(p) then max_int
        else begin
          let placed = ref 0 in
          for q' = 0 to n_log - 1 do
            if sol.(q') >= 0 && flow.(q).(q') > 0 then
              placed :=
                !placed + (flow.(q).(q') * Arch.Device.distance device p sol.(q'))
          done;
          (* prefer central (high-degree) spots when no partner is placed *)
          (!placed * n_phys) - Arch.Device.degree device p
        end
      in
      let best = ref (-1) and best_s = ref max_int in
      for p = 0 to n_phys - 1 do
        let s = score p in
        if s < !best_s then begin
          best := p;
          best_s := s
        end
      done;
      sol.(q) <- !best;
      taken.(!best) <- true)
    order;
  sol

let place ?(seed = 1) ?(iterations = 250) device circuit =
  if Quantum.Circuit.n_qubits circuit > Arch.Device.n_qubits device then
    invalid_arg "Qap.place: circuit does not fit on the device";
  let flow = flow_matrix circuit in
  let n_log = Array.length flow in
  let n_phys = Arch.Device.n_qubits device in
  let rng = Rng.create seed in
  let sol = greedy device flow in
  let taken = Array.make n_phys false in
  Array.iter (fun p -> taken.(p) <- true) sol;
  let current = ref (cost ~device ~flow sol) in
  let best = ref !current in
  let best_sol = ref (Array.copy sol) in
  let tenure = 7 in
  (* tabu.(q).(p): iteration until which re-assigning q to p is tabu *)
  let tabu = Array.make_matrix n_log n_phys 0 in
  for iter = 1 to iterations do
    (* Best admissible move this iteration: either swap two logical
       qubits' positions or relocate one to a free physical qubit. *)
    let best_move = ref None and best_delta = ref max_int in
    let consider move delta forbidden =
      let aspirated = !current + delta < !best in
      if (not forbidden) || aspirated then
        if
          delta < !best_delta
          || (delta = !best_delta && Rng.bool rng)
        then begin
          best_move := Some move;
          best_delta := delta
        end
    in
    for i = 0 to n_log - 1 do
      for j = i + 1 to n_log - 1 do
        let delta = swap_delta ~device ~flow sol i j in
        let forbidden =
          tabu.(i).(sol.(j)) > iter || tabu.(j).(sol.(i)) > iter
        in
        consider (`Swap (i, j)) delta forbidden
      done;
      for p = 0 to n_phys - 1 do
        if not taken.(p) then begin
          let delta = move_delta ~device ~flow sol i p in
          consider (`Move (i, p)) delta (tabu.(i).(p) > iter)
        end
      done
    done;
    (match !best_move with
    | None -> ()
    | Some (`Swap (i, j)) ->
      tabu.(i).(sol.(i)) <- iter + tenure;
      tabu.(j).(sol.(j)) <- iter + tenure;
      let t = sol.(i) in
      sol.(i) <- sol.(j);
      sol.(j) <- t;
      current := !current + !best_delta
    | Some (`Move (i, p)) ->
      tabu.(i).(sol.(i)) <- iter + tenure;
      taken.(sol.(i)) <- false;
      taken.(p) <- true;
      sol.(i) <- p;
      current := !current + !best_delta);
    if !current < !best then begin
      best := !current;
      best_sol := Array.copy sol
    end
  done;
  !best_sol

let route ?(seed = 1) ?sabre_config device circuit =
  let initial = place ~seed device circuit in
  let config =
    match sabre_config with
    | Some c -> c
    | None -> { Heuristics.Sabre.default_config with seed }
  in
  Heuristics.Sabre.route_from ~config ~initial device circuit
