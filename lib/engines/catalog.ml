(* The builtin engine catalogue and name table.

   Every routing path in the repo is wrapped behind the [Registry.t]
   contract: the MaxSAT reference router (sliced, seeded via
   [Router.config.initial_map]), the three heuristic baselines, the
   hybrid MaxSAT-mapping + SABRE pipeline, and the two engines new to
   this subsystem — [swap_strategy] and [qap].  Callers go through
   [find]/[all]/[names]; [register] is the extension point. *)

let seeded placement cfg =
  match (cfg : Registry.config).initial with
  | Some a -> Array.copy a
  | None -> placement ()

let maxsat_route device circuit (cfg : Registry.config) =
  let config =
    {
      Satmap.Router.default_config with
      timeout = cfg.timeout;
      n_swaps = cfg.n_swaps;
      objective = cfg.objective;
      initial_map = cfg.initial;
      (* the registry wrapper verifies uniformly *)
      verify = false;
    }
  in
  match
    Satmap.Router.route_sliced ~config ~slice_size:cfg.slice_size device circuit
  with
  | Satmap.Router.Routed (routed, stats) ->
    Ok (routed, stats.Satmap.Router.proved_optimal)
  | Satmap.Router.Failed msg -> Error msg

let sabre_route device circuit (cfg : Registry.config) =
  let config = { Heuristics.Sabre.default_config with seed = cfg.seed } in
  let routed =
    match cfg.initial with
    | Some initial -> Heuristics.Sabre.route_from ~config ~initial device circuit
    | None -> Heuristics.Sabre.route ~config device circuit
  in
  Ok (routed, false)

let astar_route device circuit (cfg : Registry.config) =
  let config = { Heuristics.Astar_route.default_config with seed = cfg.seed } in
  Ok (Heuristics.Astar_route.route ~config ?initial:cfg.initial device circuit, false)

let tket_route device circuit (cfg : Registry.config) =
  let config = { Heuristics.Tket_route.default_config with seed = cfg.seed } in
  Ok (Heuristics.Tket_route.route ~config ?initial:cfg.initial device circuit, false)

let hybrid_route device circuit (cfg : Registry.config) =
  let config =
    {
      Heuristics.Hybrid.timeout = cfg.timeout;
      verify = false;
      sabre = { Heuristics.Sabre.default_config with seed = cfg.seed };
    }
  in
  Ok (Heuristics.Hybrid.route ~config device circuit, false)

let qap_place device circuit (cfg : Registry.config) =
  Qap.place ~seed:cfg.seed device circuit

let qap_route device circuit (cfg : Registry.config) =
  let initial = seeded (fun () -> qap_place device circuit cfg) cfg in
  let config = { Heuristics.Sabre.default_config with seed = cfg.seed } in
  Ok (Heuristics.Sabre.route_from ~config ~initial device circuit, false)

let no_caps =
  {
    Registry.optimal = false;
    anytime = false;
    commuting_only = false;
    reorders_commuting = false;
    accepts_seed = false;
    places = false;
  }

let builtins : Registry.t list =
  [
    {
      name = "maxsat";
      description =
        "the paper's sliced MaxSAT router (locally optimal; globally \
         optimal when one block suffices)";
      caps = { no_caps with optimal = true; anytime = true; accepts_seed = true };
      route = maxsat_route;
      place = None;
    };
    {
      name = "sabre";
      description = "SABRE bidirectional heuristic mapping + routing";
      caps = { no_caps with accepts_seed = true };
      route = sabre_route;
      place = None;
    };
    {
      name = "astar";
      description = "MQT-style per-layer A* swap search";
      caps = { no_caps with accepts_seed = true };
      route = astar_route;
      place = None;
    };
    {
      name = "tket";
      description = "tket-style greedy placement + lookahead swap selection";
      caps = { no_caps with accepts_seed = true };
      route = tket_route;
      place = None;
    };
    {
      name = "hybrid";
      description = "MaxSAT optimal initial mapping + SABRE routing";
      caps = no_caps;
      route = hybrid_route;
      place = None;
    };
    {
      name = "swap_strategy";
      description =
        "SAT subgraph-isomorphism mapping + swap-strategy layers for \
         commuting (Cz/Rzz) circuits";
      caps =
        {
          no_caps with
          commuting_only = true;
          reorders_commuting = true;
          accepts_seed = true;
        };
      route = Swap_strategy.route;
      place = None;
    };
    {
      name = "qap";
      description =
        "quadratic-assignment placement with tabu search, routed by SABRE";
      caps = { no_caps with accepts_seed = true; places = true };
      route = qap_route;
      place = Some qap_place;
    };
  ]

let table : (string, Registry.t) Hashtbl.t = Hashtbl.create 16

let () = List.iter (fun e -> Hashtbl.replace table e.Registry.name e) builtins

let register e = Hashtbl.replace table e.Registry.name e
let find name = Hashtbl.find_opt table name

let all () =
  List.sort
    (fun a b -> compare a.Registry.name b.Registry.name)
    (Hashtbl.fold (fun _ e acc -> e :: acc) table [])

let names () = List.map (fun e -> e.Registry.name) (all ())

let route ~engine device circuit config =
  match find engine with
  | None ->
    Error
      (Printf.sprintf "unknown engine %S (available: %s)" engine
         (String.concat ", " (names ())))
  | Some e -> Registry.run e device circuit config
