(* The engine contract: one uniform signature over every routing path in
   the repo — the MaxSAT routers, the heuristic baselines, and the new
   swap-strategy and QAP engines — so callers (CLI, serve tier, bench,
   differential harness) select a router by name instead of hard-wiring a
   module.

   Engines are pure values; the mutable name table and the builtin
   catalogue live in [Catalog].  [run] is the single entry point callers
   should use: it wraps the engine's raw route in an Obs span, times it,
   verifies the output against the original circuit when asked, and
   converts escaped exceptions into [Error] so one misbehaving engine
   cannot take down a differential run. *)

type caps = {
  optimal : bool;
      (** can prove swap-count optimality (reported per-run in
          {!meta.m_optimal}; sliced runs only prove local optimality) *)
  anytime : bool;  (** improves under a deadline rather than all-or-nothing *)
  commuting_only : bool;
      (** requires every two-qubit gate to be Z-diagonal (Cz/Rzz) *)
  reorders_commuting : bool;
      (** may emit commuting gates out of program order: solves a
          relaxation of the order-preserving problem, so the MaxSAT
          optimum is not a lower bound for it (see [Differential]) *)
  accepts_seed : bool;  (** honours {!config.initial} *)
  places : bool;  (** exposes a standalone placement ({!t.place}) *)
}

type config = {
  timeout : float;
  n_swaps : int;  (** the paper's n: swap slots per gate (MaxSAT engines) *)
  slice_size : int;
  objective : Satmap.Encoding.objective;
  seed : int;
  initial : int array option;
      (** external initial placement (log -> phys) for engines with
          [accepts_seed] *)
  verify : bool;  (** run [Verifier.check_exn] on every output *)
}

let default_config =
  {
    timeout = 30.0;
    n_swaps = 1;
    slice_size = 25;
    objective = Satmap.Encoding.Count_swaps;
    seed = 1;
    initial = None;
    verify = true;
  }

type meta = {
  m_engine : string;
  m_time : float;  (** wall-clock seconds inside the engine *)
  m_optimal : bool;  (** the reported cost is a proved optimum *)
}

type outcome = (Satmap.Routed.t * meta, string) result

type t = {
  name : string;
  description : string;
  caps : caps;
  route :
    Arch.Device.t ->
    Quantum.Circuit.t ->
    config ->
    (Satmap.Routed.t * bool, string) result;
      (** raw route; the [bool] is the proved-optimal flag.  Call through
          {!run}, which adds the span, timing, verification and exception
          guard. *)
  place : (Arch.Device.t -> Quantum.Circuit.t -> config -> int array) option;
}

let m_routes = Obs.Metrics.counter "engines.routes"
let m_failures = Obs.Metrics.counter "engines.failures"

let run engine device circuit config : outcome =
  Obs.Trace.with_span "engines.route"
    ~args:
      [
        ("engine", Obs.Trace.Str engine.name);
        ("n_qubits", Obs.Trace.Int (Quantum.Circuit.n_qubits circuit));
        ("n_gates", Obs.Trace.Int (Quantum.Circuit.length circuit));
      ]
  @@ fun () ->
  Obs.Metrics.incr m_routes;
  let start = Unix.gettimeofday () in
  let result =
    match engine.route device circuit config with
    | result -> result
    | exception Failure msg -> Error msg
    | exception Invalid_argument msg -> Error msg
  in
  let elapsed = Unix.gettimeofday () -. start in
  match result with
  | Error msg ->
    Obs.Metrics.incr m_failures;
    Error (Printf.sprintf "%s: %s" engine.name msg)
  | Ok (routed, optimal) -> (
    let verified =
      if not config.verify then Ok ()
      else
        match Satmap.Verifier.check ~original:circuit routed with
        | [] -> Ok ()
        | failures ->
          Error
            (String.concat "; "
               (List.map Satmap.Verifier.failure_to_string failures))
    in
    match verified with
    | Error msg ->
      Obs.Metrics.incr m_failures;
      Error (Printf.sprintf "%s: verifier rejected output: %s" engine.name msg)
    | Ok () ->
      Ok (routed, { m_engine = engine.name; m_time = elapsed; m_optimal = optimal }))
