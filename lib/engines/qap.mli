(** Quadratic-assignment placement (flow x distance objective) with
    tabu-search improvement, in the style of 2QAN.  Usable standalone
    (placement + SABRE routing) or as an initial-mapping seeder for any
    engine that accepts one. *)

val flow_matrix : Quantum.Circuit.t -> int array array
(** Symmetric interaction-count matrix over logical qubits. *)

val cost : device:Arch.Device.t -> flow:int array array -> int array -> int
(** The QAP objective: sum of [flow(q, q') * dist(sol q, sol q')] over
    unordered logical pairs. *)

val place :
  ?seed:int -> ?iterations:int -> Arch.Device.t -> Quantum.Circuit.t -> int array
(** Greedy construction + tabu search (pair swaps and relocations to
    free physical qubits, tenure 7, aspiration on the incumbent).
    Returns an injective log -> phys array.  Deterministic per seed. *)

val route :
  ?seed:int ->
  ?sabre_config:Heuristics.Sabre.config ->
  Arch.Device.t ->
  Quantum.Circuit.t ->
  Satmap.Routed.t
(** QAP placement followed by [Sabre.route_from] on it. *)
