(** Swap-strategy routing for commuting-gate circuits (Matsuo et al.,
    arXiv 2212.05666): SAT subgraph-isomorphism initial mapping into the
    accumulated adjacency after l swap-strategy layers, binary search on
    l, then greedy commuting-aware emission.  The output may reorder
    mutually commuting (Z-diagonal) gates; the verifier's commuting
    relaxation accepts exactly this. *)

val supported : Quantum.Circuit.t -> bool
(** True when every two-qubit gate is Z-diagonal (Cz/Rzz). *)

val strategy : Arch.Device.t -> (int * int) list array
(** The swap strategy itself: greedy edge-coloring rounds of the device
    graph, applied cyclically. *)

val route :
  Arch.Device.t ->
  Quantum.Circuit.t ->
  Registry.config ->
  (Satmap.Routed.t * bool, string) result
(** Errors on unsupported (non-commuting) circuits rather than falling
    back silently. *)
