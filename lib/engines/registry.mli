(** The engine contract: one uniform route signature over every routing
    path in the repo, with capability flags and Obs spans.  Builtin
    engines and the name table live in {!Catalog}. *)

(** Capability flags, advertised per engine. *)
type caps = {
  optimal : bool;
      (** can prove swap-count optimality (sliced runs prove only local
          optimality; the per-run truth is {!meta.m_optimal}) *)
  anytime : bool;
      (** improves under a deadline rather than all-or-nothing *)
  commuting_only : bool;
      (** requires every two-qubit gate to be Z-diagonal (Cz/Rzz) *)
  reorders_commuting : bool;
      (** may emit commuting gates out of program order — solves a
          relaxation, so the order-preserving MaxSAT optimum is not a
          lower bound for it *)
  accepts_seed : bool;  (** honours {!config.initial} *)
  places : bool;  (** exposes a standalone placement ({!t.place}) *)
}

type config = {
  timeout : float;
  n_swaps : int;
  slice_size : int;
  objective : Satmap.Encoding.objective;
  seed : int;
  initial : int array option;
  verify : bool;
}

val default_config : config

type meta = {
  m_engine : string;
  m_time : float;
  m_optimal : bool;
}

type outcome = (Satmap.Routed.t * meta, string) result

type t = {
  name : string;
  description : string;
  caps : caps;
  route :
    Arch.Device.t ->
    Quantum.Circuit.t ->
    config ->
    (Satmap.Routed.t * bool, string) result;
  place : (Arch.Device.t -> Quantum.Circuit.t -> config -> int array) option;
}

val run : t -> Arch.Device.t -> Quantum.Circuit.t -> config -> outcome
(** The single entry point callers should use: wraps the engine's raw
    [route] in an [engines.route] Obs span, times it, verifies the
    output with {!Satmap.Verifier} when [config.verify], and converts
    escaped [Failure]/[Invalid_argument] into [Error]. *)
