(** Cross-engine differential harness: run k engines on one instance,
    verify every output with {!Satmap.Verifier}, assert that a proved
    MaxSAT optimum lower-bounds every order-preserving heuristic, and
    report per-engine cost/depth/time.

    The bound holds over routings that replay the source circuit's
    exact total order — what the MaxSAT encoding minimises over.  Two
    relaxations legitimately escape it and are exempt: engines with
    [reorders_commuting] (commuting gates may execute out of program
    order), and front-layer heuristics that interleave gates on
    disjoint qubits (dependency-sound; detected by replaying the routed
    circuit through its SWAP trajectory).  A cheaper routing in exact
    program order is reported as a violation — it contradicts the
    optimality proof.  Engine errors (e.g. [swap_strategy] on a
    non-commuting circuit) are reported as rows but are not
    violations. *)

type row = {
  r_engine : string;
  r_result : (Satmap.Routed.t * Registry.meta, string) result;
}

type report = {
  rows : row list;
  violations : string list;  (** empty on a clean run *)
}

val run :
  ?engines:string list ->
  ?config:Registry.config ->
  Arch.Device.t ->
  Quantum.Circuit.t ->
  report
(** Forces [verify = true] and [initial = None] (a seeded maxsat row
    would be a non-global optimum and bound nothing). *)

val pp_report : Format.formatter -> report -> unit
