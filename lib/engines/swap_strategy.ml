(* Swap-strategy routing for commuting-gate circuits (Matsuo, Yamashita,
   Egger — arXiv 2212.05666), the natural engine for lib/qaoa's MaxCut
   workloads.

   A swap strategy is a fixed sequence of swap layers — rounds of
   disjoint device edges, here the greedy edge-coloring of the device
   graph cycled forever.  Because every two-qubit gate of a QAOA block is
   Z-diagonal, the gates commute and each can execute at *any* point
   while the strategy runs, namely whenever its two logical qubits pass
   through adjacent positions.  After l layers the "accumulated
   adjacency" A_l relates start positions that were adjacent at some
   time t <= l; a circuit whose interaction graph embeds into A_l is
   routable with at most l swap layers.

   The initial mapping is found as subgraph isomorphism into A_l encoded
   to SAT (exactly-one per logical qubit, at-most-one per position, and
   per program edge a neighbourhood clause), with binary search on l —
   the SAT monotonicity in l makes that sound; an Unknown verdict
   (deadline) is treated as unsatisfiable, as in the paper.  Emission is
   greedy: execute every pending gate whose endpoints are adjacent, else
   apply the next strategy layer, dropping swaps that touch no pending
   qubit (dead-swap elimination — pending qubits still follow the full
   strategy trajectory, so the A_l guarantee is preserved).  A
   shortest-path swap chain on the oldest pending gate breaks any stall,
   guaranteeing termination even for blocks the SAT bound does not
   cover (later QAOA cycles start from an evolved mapping).

   The output reorders commuting gates relative to program order — the
   verifier's Z-diagonal relaxation accepts exactly this — so the engine
   advertises [reorders_commuting] and the differential harness does not
   hold the order-preserving MaxSAT optimum over it. *)

let z_diagonal_two = function
  | Quantum.Gate.Cz | Quantum.Gate.Rzz _ -> true
  | _ -> false

let supported circuit =
  List.for_all
    (fun g ->
      match g with
      | Quantum.Gate.Two { kind; _ } -> z_diagonal_two kind
      | _ -> true)
    (Quantum.Circuit.gates circuit)

(* The strategy: greedy edge-coloring rounds of the device graph. *)
let strategy device =
  let g =
    Qaoa.Graphs.of_edges
      ~n:(Arch.Device.n_qubits device)
      (Arch.Device.edges device)
  in
  Array.of_list (Qaoa.Build.commuting_layers g)

(* Accumulated adjacency snapshots over start positions: [snaps.(l)] is
   A_l, for l = 0 (plain device adjacency) up to the first complete
   graph or [cap] layers.  [inv.(p)] tracks which start position the
   qubit now at position [p] came from. *)
let accumulated device rounds ~cap =
  let n = Arch.Device.n_qubits device in
  let adj = Array.make_matrix n n false in
  let inv = Array.init n Fun.id in
  let record () =
    List.iter
      (fun (a, b) ->
        adj.(inv.(a)).(inv.(b)) <- true;
        adj.(inv.(b)).(inv.(a)) <- true)
      (Arch.Device.edges device)
  in
  let complete () =
    let ok = ref true in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if not adj.(a).(b) then ok := false
      done
    done;
    !ok
  in
  record ();
  let snaps = ref [ Array.map Array.copy adj ] in
  if Array.length rounds > 0 then begin
    let l = ref 0 in
    while !l < cap && not (complete ()) do
      List.iter
        (fun (a, b) ->
          let u = inv.(a) and v = inv.(b) in
          inv.(a) <- v;
          inv.(b) <- u)
        rounds.(!l mod Array.length rounds);
      record ();
      incr l;
      snaps := Array.map Array.copy adj :: !snaps
    done
  end;
  Array.of_list (List.rev !snaps)

(* SAT subgraph-isomorphism: embed the program interaction graph into
   the accumulated adjacency [adj].  Returns the placement on success;
   Unsat and Unknown (deadline) both come back as [None]. *)
let embed ?deadline ~n_log ~n_phys pairs adj =
  let s = Sat.Solver.create () in
  let sink = Sat.Sink.of_solver s in
  let vars =
    Array.init n_log (fun _ -> Array.init n_phys (fun _ -> Sat.Solver.new_var s))
  in
  let lit q p = Sat.Lit.of_var vars.(q).(p) in
  for q = 0 to n_log - 1 do
    Sat.Card.exactly_one sink (List.init n_phys (lit q))
  done;
  if n_log > 1 then
    for p = 0 to n_phys - 1 do
      Sat.Card.at_most_one sink (List.init n_log (fun q -> lit q p))
    done;
  List.iter
    (fun (u, v) ->
      for p = 0 to n_phys - 1 do
        let nbrs = ref [] in
        for p' = n_phys - 1 downto 0 do
          if adj.(p).(p') then nbrs := lit v p' :: !nbrs
        done;
        Sat.Solver.add_clause s (Sat.Lit.neg (lit u p) :: !nbrs)
      done)
    pairs;
  match Sat.Solver.solve ?deadline s with
  | Sat ->
    Some
      (Array.init n_log (fun q ->
           let p = ref (-1) in
           for p' = n_phys - 1 downto 0 do
             if Sat.Solver.model_value s vars.(q).(p') then p := p'
           done;
           !p))
  | Unsat | Unknown -> None

let interaction_pairs circuit =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (_, q, q') ->
      let e = if q <= q' then (q, q') else (q', q) in
      if Hashtbl.mem seen e then None
      else begin
        Hashtbl.replace seen e ();
        Some e
      end)
    (Quantum.Circuit.two_qubit_gates circuit)

(* Binary search the minimal layer count whose accumulated adjacency
   admits an embedding; returns the model found at that count. *)
let sat_placement ~deadline device rounds circuit =
  let n_log = Quantum.Circuit.n_qubits circuit in
  let n_phys = Arch.Device.n_qubits device in
  let pairs = interaction_pairs circuit in
  let snaps = accumulated device rounds ~cap:(4 * n_phys) in
  let hi = Array.length snaps - 1 in
  match embed ~deadline ~n_log ~n_phys pairs snaps.(hi) with
  | None -> None
  | Some model ->
    let lo = ref 0 and hi = ref hi and best = ref model in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      match embed ~deadline ~n_log ~n_phys pairs snaps.(mid) with
      | Some m ->
        best := m;
        hi := mid
      | None -> lo := mid + 1
    done;
    Some !best

let route device circuit (cfg : Registry.config) =
  let n_log = Quantum.Circuit.n_qubits circuit in
  let n_phys = Arch.Device.n_qubits device in
  if n_log > n_phys then Error "circuit does not fit on the device"
  else if not (supported circuit) then
    Error
      "swap_strategy requires every two-qubit gate to be Z-diagonal \
       (Cz/Rzz); use another engine for general circuits"
  else begin
    let deadline = Unix.gettimeofday () +. cfg.timeout in
    let rounds = strategy device in
    let initial =
      match cfg.initial with
      | Some a -> Array.copy a
      | None ->
        if Quantum.Circuit.count_two_qubit circuit = 0 then
          Array.init n_log Fun.id
        else (
          match sat_placement ~deadline device rounds circuit with
          | Some m -> m
          | None -> Heuristics.Tket_route.initial_placement ~device circuit)
    in
    let cur = Array.copy initial in
    let occ = Array.make n_phys (-1) in
    Array.iteri (fun q p -> occ.(p) <- q) cur;
    let out = ref [] in
    let emit g = out := g :: !out in
    let apply_swap a b =
      let qa = occ.(a) and qb = occ.(b) in
      occ.(a) <- qb;
      occ.(b) <- qa;
      if qa >= 0 then cur.(qa) <- b;
      if qb >= 0 then cur.(qb) <- a;
      emit (Quantum.Gate.swap a b)
    in
    (* Pending commuting block, in program order. *)
    let pending = ref [] in
    let execute_ready () =
      let ready, rest =
        List.partition
          (fun (_, u, v) -> Arch.Device.adjacent device cur.(u) cur.(v))
          !pending
      in
      List.iter
        (fun (kind, u, v) ->
          emit (Quantum.Gate.Two { kind; control = cur.(u); target = cur.(v) }))
        ready;
      pending := rest;
      ready <> []
    in
    let n_rounds = Array.length rounds in
    let flush () =
      pending := List.rev !pending;
      ignore (execute_ready ());
      let round_ix = ref 0 and stall = ref 0 in
      while !pending <> [] do
        if n_rounds = 0 || !stall > n_rounds then begin
          (* Stall breaker: walk the oldest pending gate's qubits
             together along a shortest path — guaranteed progress. *)
          let _, u, v = List.hd !pending in
          while not (Arch.Device.adjacent device cur.(u) cur.(v)) do
            let p = cur.(u) and q = cur.(v) in
            let next =
              List.find
                (fun p' ->
                  Arch.Device.distance device p' q
                  = Arch.Device.distance device p q - 1)
                (Arch.Device.neighbors device p)
            in
            apply_swap p next
          done;
          ignore (execute_ready ());
          stall := 0
        end
        else begin
          let relevant = Array.make n_phys false in
          List.iter
            (fun (_, u, v) ->
              relevant.(cur.(u)) <- true;
              relevant.(cur.(v)) <- true)
            !pending;
          List.iter
            (fun (a, b) -> if relevant.(a) || relevant.(b) then apply_swap a b)
            rounds.(!round_ix mod n_rounds);
          incr round_ix;
          if execute_ready () then stall := 0 else incr stall
        end
      done
    in
    List.iter
      (fun g ->
        match g with
        | Quantum.Gate.Two { kind; control = u; target = v } ->
          pending := (kind, u, v) :: !pending
        | Quantum.Gate.One { kind; target = q } ->
          flush ();
          emit (Quantum.Gate.One { kind; target = cur.(q) })
        | Quantum.Gate.Measure { qubit; clbit } ->
          flush ();
          emit (Quantum.Gate.Measure { qubit = cur.(qubit); clbit })
        | Quantum.Gate.Barrier qs ->
          flush ();
          emit (Quantum.Gate.Barrier (List.map (fun q -> cur.(q)) qs)))
      (Quantum.Circuit.gates circuit);
    flush ();
    let physical =
      Quantum.Circuit.create
        ~n_clbits:(Quantum.Circuit.n_clbits circuit)
        ~n_qubits:n_phys (List.rev !out)
    in
    let routed =
      Satmap.Routed.create ~device
        ~initial:(Satmap.Mapping.of_array ~n_phys initial)
        ~final:(Satmap.Mapping.of_array ~n_phys cur)
        ~circuit:physical
    in
    Ok (routed, false)
  end
