(** Builtin engine catalogue and name table.

    Builtins: [maxsat] (the paper's sliced MaxSAT router), [sabre],
    [astar], [tket], [hybrid], [swap_strategy] and [qap]. *)

val register : Registry.t -> unit
(** Add or replace an engine (extension point; latest wins). *)

val find : string -> Registry.t option
val all : unit -> Registry.t list  (** sorted by name *)

val names : unit -> string list

val route :
  engine:string ->
  Arch.Device.t ->
  Quantum.Circuit.t ->
  Registry.config ->
  Registry.outcome
(** Look up by name and {!Registry.run}; unknown names return [Error]
    with the available-engine list. *)
