(* TB-OLSQ-like baseline (Tan & Cong — ICCAD 2020, "Optimal layout
   synthesis for quantum computing", transition-based mode), re-encoded
   over our SAT core (substitution #3 in DESIGN.md).

   Faithful structural features of the original:
   - coarse *time blocks* instead of per-gate time steps; every gate
     carries a block-assignment variable (the original's integer time
     coordinate, here one-hot), constrained by the dependency order;
   - between consecutive blocks a *set of disjoint swaps* (a matching)
     executes in parallel;
   - the block count is searched upward from the dependency depth until
     satisfiable, as in the original's incremental-depth loop;
   - the objective is the total number of swaps.

   What the original pays for — and what this reproduction preserves — is
   the gate-to-block assignment dimension: executability constraints
   couple every gate with every block (O(G * B * P) clauses), against
   SATMAP's single gate layer per step. *)

type objective = Count_swaps | Fidelity of Arch.Calibration.t

type config = {
  timeout : float;
  max_extra_blocks : int;
  max_vars : int;
  max_clauses : int;
  accept_feasible : bool;
  verify : bool;
  objective : objective;
}

let default_config =
  {
    timeout = 30.0;
    max_extra_blocks = 8;
    max_vars = 300_000;
    max_clauses = 2_000_000;
    (* The original is an SMT-style optimal tool with no anytime mode. *)
    accept_feasible = false;
    verify = true;
    objective = Count_swaps;
  }

type instance_vars = {
  n_log : int;
  n_phys : int;
  n_blocks : int;
  n_gates : int;
  n_edges : int;
}

let map_var v ~q ~p ~b = (((b * v.n_log) + q) * v.n_phys) + p
let map_base v = v.n_blocks * v.n_log * v.n_phys
let x_var v ~g ~b = map_base v + (g * v.n_blocks) + b
let x_base v = map_base v + (v.n_gates * v.n_blocks)
let y_var v ~g ~b = x_base v + (g * v.n_blocks) + b (* scheduled <= b *)
let y_base v = x_base v + (v.n_gates * v.n_blocks)
let swap_var v ~e ~b = y_base v + (b * v.n_edges) + e
let n_fixed v = y_base v + ((v.n_blocks - 1) * v.n_edges)

let build ?(objective = Count_swaps) ~device ~dag ~n_log ~n_blocks () =
  let n_phys = Arch.Device.n_qubits device in
  let edges = Arch.Device.edge_array device in
  let n_edges = Array.length edges in
  let n_gates = Quantum.Dag.n_nodes dag in
  let v = { n_log; n_phys; n_blocks; n_gates; n_edges } in
  let hard = Sat.Vec.create ~dummy:[] in
  let soft = ref [] in
  let next_aux = ref (n_fixed v) in
  let sink =
    Sat.Sink.
      {
        fresh_var =
          (fun () ->
            let var = !next_aux in
            incr next_aux;
            var);
        add_clause = (fun c -> Sat.Vec.push hard c);
      }
  in
  let pos var = Sat.Lit.of_var var in
  let neg var = Sat.Lit.of_var ~sign:false var in

  (* Injective map at every block. *)
  for b = 0 to n_blocks - 1 do
    for q = 0 to n_log - 1 do
      Sat.Card.exactly_one sink
        (List.init n_phys (fun p -> pos (map_var v ~q ~p ~b)))
    done;
    for p = 0 to n_phys - 1 do
      if n_log > 1 then
        Sat.Card.at_most_one sink
          (List.init n_log (fun q -> pos (map_var v ~q ~p ~b)))
    done
  done;

  (* Each gate is assigned exactly one block; prefix variables y track
     "scheduled at or before b". *)
  for g = 0 to n_gates - 1 do
    Sat.Card.exactly_one sink
      (List.init n_blocks (fun b -> pos (x_var v ~g ~b)));
    for b = 0 to n_blocks - 1 do
      (* y(g,b) <-> x(g,b) \/ y(g,b-1) *)
      let y = pos (y_var v ~g ~b) in
      let x = pos (x_var v ~g ~b) in
      if b = 0 then begin
        sink.add_clause [ Sat.Lit.neg y; x ];
        sink.add_clause [ y; Sat.Lit.neg x ]
      end
      else begin
        let y' = pos (y_var v ~g ~b:(b - 1)) in
        sink.add_clause [ Sat.Lit.neg y; x; y' ];
        sink.add_clause [ y; Sat.Lit.neg x ];
        sink.add_clause [ y; Sat.Lit.neg y' ]
      end
    done;
    (* Dependencies: a gate in block b needs every predecessor scheduled
       strictly earlier. *)
    Array.iter
      (fun g' ->
        sink.add_clause [ Sat.Lit.neg (pos (x_var v ~g ~b:0)) ];
        for b = 1 to n_blocks - 1 do
          sink.add_clause
            [ Sat.Lit.neg (pos (x_var v ~g ~b)); pos (y_var v ~g:g' ~b:(b - 1)) ]
        done)
      (Quantum.Dag.preds dag g)
  done;

  (* Executability: a gate in block b has its qubits adjacent there. *)
  for g = 0 to n_gates - 1 do
    let node = Quantum.Dag.node dag g in
    for b = 0 to n_blocks - 1 do
      let nx = neg (x_var v ~g ~b) in
      for p = 0 to n_phys - 1 do
        sink.add_clause
          (nx
          :: neg (map_var v ~q:node.q1 ~p ~b)
          :: List.map
               (fun p' -> pos (map_var v ~q:node.q2 ~p:p' ~b))
               (Arch.Device.neighbors device p))
      done
    done
  done;

  (* Transitions: a matching of swaps between consecutive blocks. *)
  for b = 0 to n_blocks - 2 do
    (* Disjointness of simultaneous swaps. *)
    for e = 0 to n_edges - 1 do
      for e' = e + 1 to n_edges - 1 do
        let a1, b1 = edges.(e) and a2, b2 = edges.(e') in
        if a1 = a2 || a1 = b2 || b1 = a2 || b1 = b2 then
          sink.add_clause
            [ neg (swap_var v ~e ~b); neg (swap_var v ~e:e' ~b) ]
      done
    done;
    (* Effect of a chosen swap. *)
    for e = 0 to n_edges - 1 do
      let pa, pb = edges.(e) in
      let ns = neg (swap_var v ~e ~b) in
      for q = 0 to n_log - 1 do
        let m layer_q layer_p blk = map_var v ~q:layer_q ~p:layer_p ~b:blk in
        sink.add_clause [ ns; neg (m q pb b); pos (m q pa (b + 1)) ];
        sink.add_clause [ ns; pos (m q pb b); neg (m q pa (b + 1)) ];
        sink.add_clause [ ns; neg (m q pa b); pos (m q pb (b + 1)) ];
        sink.add_clause [ ns; pos (m q pa b); neg (m q pb (b + 1)) ]
      done
    done;
    (* Frame axioms. *)
    for p = 0 to n_phys - 1 do
      let touching = ref [] in
      Array.iteri
        (fun e (a, b') ->
          if a = p || b' = p then touching := pos (swap_var v ~e ~b) :: !touching)
        edges;
      for q = 0 to n_log - 1 do
        sink.add_clause
          (neg (map_var v ~q ~p ~b)
          :: pos (map_var v ~q ~p ~b:(b + 1))
          :: !touching);
        sink.add_clause
          (pos (map_var v ~q ~p ~b)
          :: neg (map_var v ~q ~p ~b:(b + 1))
          :: !touching)
      done
    done;
    (* Soft: no swap on this edge at this transition; the weighted variant
       (Q6) penalises each edge by its scaled -log swap fidelity. *)
    for e = 0 to n_edges - 1 do
      let w =
        match objective with
        | Count_swaps -> 1
        | Fidelity cal -> Arch.Calibration.swap_log_weight cal edges.(e)
      in
      soft := (w, [ neg (swap_var v ~e ~b) ]) :: !soft
    done
  done;

  ( v,
    Maxsat.Instance.create ~n_vars:!next_aux
      ~hard:(Sat.Vec.to_list hard)
      ~soft:!soft )

let estimate_vars ~device ~dag ~n_log ~n_blocks =
  let n_phys = Arch.Device.n_qubits device in
  let n_edges = Arch.Device.n_edges device in
  let n_gates = Quantum.Dag.n_nodes dag in
  (n_blocks * n_log * n_phys)
  + (2 * n_gates * n_blocks)
  + ((n_blocks - 1) * n_edges)

(* Clause estimate; the executability term G*B*P dominates and is what
   makes the time-block encoding heavier than SATMAP's. *)
let estimate_clauses ~device ~dag ~n_log ~n_blocks =
  let n_phys = Arch.Device.n_qubits device in
  let n_edges = Arch.Device.n_edges device in
  let n_gates = Quantum.Dag.n_nodes dag in
  (n_gates * n_blocks * n_phys)
  + (3 * n_gates * n_blocks)
  + (n_blocks * 4 * n_log * n_phys)
  + ((n_blocks - 1)
    * ((n_edges * n_edges / 4) + (4 * n_edges * n_log) + (2 * n_phys * n_log)))

let decode ~device ~dag v model =
  let edges = Arch.Device.edge_array device in
  let block_of_gate =
    Array.init v.n_gates (fun g ->
        let rec find b =
          if b >= v.n_blocks then failwith "Tb_olsq.decode: gate unscheduled"
          else if model.(x_var v ~g ~b) then b
          else find (b + 1)
        in
        find 0)
  in
  let map_at b =
    Array.init v.n_log (fun q ->
        let rec find p =
          if p >= v.n_phys then failwith "Tb_olsq.decode: qubit unmapped"
          else if model.(map_var v ~q ~p ~b) then p
          else find (p + 1)
        in
        find 0)
  in
  (* Events: per block, execute its gates, then the transition swaps. *)
  let events = ref [] in
  for b = 0 to v.n_blocks - 1 do
    Array.iteri
      (fun g gb -> if gb = b then events := Heuristics.Sabre.Exec g :: !events)
      block_of_gate;
    if b < v.n_blocks - 1 then
      for e = 0 to v.n_edges - 1 do
        if model.(swap_var v ~e ~b) then
          events := Heuristics.Sabre.Swp edges.(e) :: !events
      done
  done;
  ignore dag;
  (map_at 0, List.rev !events)

let route ?(config = default_config) device circuit =
  let start = Unix.gettimeofday () in
  let deadline = start +. config.timeout in
  let n_log = Quantum.Circuit.n_qubits circuit in
  if n_log > Arch.Device.n_qubits device then
    Satmap.Router.Failed "circuit does not fit on the device"
  else begin
    let dag = Quantum.Dag.build circuit in
    if Quantum.Dag.n_nodes dag = 0 then
      Satmap.Router.route_monolithic
        ~config:{ Satmap.Router.default_config with timeout = config.timeout }
        device circuit
    else begin
      let depth = List.length (Quantum.Dag.layers dag) in
      (* The dependency constraint forbids block 0 for gates with
         predecessors and we never waste block 0, so blocks = depth + 1 is
         the first candidate able to hold the dependency chain with one
         leading swap-free block. *)
      let rec attempt extra best_failure =
        if extra > config.max_extra_blocks then
          Satmap.Router.Failed best_failure
        else if Unix.gettimeofday () > deadline then
          Satmap.Router.Failed "timeout"
        else begin
          let n_blocks = depth + extra in
          if
            estimate_vars ~device ~dag ~n_log ~n_blocks > config.max_vars
            || estimate_clauses ~device ~dag ~n_log ~n_blocks
               > config.max_clauses
          then Satmap.Router.Failed "encoding exceeds memory guard"
          else begin
            let v, instance =
              build ~objective:config.objective ~device ~dag ~n_log ~n_blocks
                ()
            in
            let solve_result = Maxsat.Optimizer.solve ~deadline instance in
            match solve_result with
            | Maxsat.Optimizer.Feasible _ when not config.accept_feasible ->
              Satmap.Router.Failed "timeout"
            | Maxsat.Optimizer.Optimal o | Maxsat.Optimizer.Feasible o ->
              let initial, events = decode ~device ~dag v o.model in
              let physical, final =
                Heuristics.Sabre.emit ~device ~circuit ~initial events
              in
              let n_phys = Arch.Device.n_qubits device in
              let routed =
                Satmap.Routed.create ~device
                  ~initial:(Satmap.Mapping.of_array ~n_phys initial)
                  ~final:(Satmap.Mapping.of_array ~n_phys final)
                  ~circuit:physical
              in
              if config.verify then
                Satmap.Verifier.check_exn ~original:circuit routed;
              let proved_optimal =
                match solve_result with
                | Maxsat.Optimizer.Optimal _ -> true
                | Maxsat.Optimizer.Feasible _ | Maxsat.Optimizer.Unsatisfiable _
                | Maxsat.Optimizer.Timeout ->
                  false
              in
              Satmap.Router.Routed
                ( routed,
                  {
                    Satmap.Router.time = Unix.gettimeofday () -. start;
                    n_backtracks = 0;
                    n_blocks;
                    proved_optimal;
                    escalations = extra;
                    maxsat_iterations = o.iterations;
                    certified = false;
                    proofs_checked = 0;
                    proof_events = 0;
                    certify_time = 0.;
                    solver_calls = n_blocks;
                  } )
            | Maxsat.Optimizer.Unsatisfiable _ ->
              attempt (extra + 1) "block budget exhausted"
            | Maxsat.Optimizer.Timeout -> Satmap.Router.Failed "timeout"
          end
        end
      in
      attempt 1 "unsat"
    end
  end
